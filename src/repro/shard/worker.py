"""Shard worker: the conservative θ-floor scorer and the process loop.

**Why bit-identity survives sharding.**  Every per-candidate number the
single-process Algorithm 5 computes is *composition-independent*: batch
estimates draw from per-candidate derived seeds
(``derive_seed(batch_seed, v, R)``), γ bounds are row-wise, and the L1
β-vector depends only on ``(seed, u)``.  The only state that couples
candidates is the *control flow* — the k-heap cutoff that decides who
gets pruned, screened, or refined.  So each shard scores its owned
candidates at the **θ-floor** (the loosest cutoff the real scan can
ever have, since ``cutoff() = max(θ, kth_best)``): it prunes only what
θ alone prunes, screens every floor-survivor, and refines everything
whose screen clears ``θ·screen_slack``.  Because the real cutoff is
always ≥ θ and ``screen_slack ≤ 1``, the floor decisions are a strict
superset of the real scan's — every value the coordinator's replay
(:func:`repro.shard.merge.replay_merge`) will ask for has been
computed, with the exact bits the single process would have produced.

The worker process itself is a small message loop over a duplex pipe:
``load_epoch`` attaches a :class:`SharedArrayBundle` and rebuilds the
engine zero-copy, ``patch`` rolls a resident epoch forward by applying
a row-level delta segment (edited edges + affected signature/γ rows —
O(Δ) transport instead of a full re-export; the patched arrays are
fresh process-local copies, so the delta segment closes immediately
and the base epoch can still be released), ``release_epoch`` drops an
epoch (the sanitizer screams if any view survives), ``query``/``pair``
score, ``health`` reports loaded epochs, ``stop`` exits.  It keeps at
most the two newest epochs, so a swap never races an in-flight query.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.bounds import compute_alpha_beta, trivial_bound
from repro.core.engine import SimRankEngine
from repro.core.montecarlo import SingleSourceEstimator, single_pair_simrank
from repro.core.query import QueryStats, _gather_candidates
from repro.errors import VertexError
from repro.graph.traversal import UNREACHABLE, bfs_distances
from repro.shard.plan import ShardPlan
from repro.utils.rng import derive_seed


__all__ = ["score_shard", "shard_pair", "worker_main"]


def score_shard(
    engine: SimRankEngine,
    plan: ShardPlan,
    shard_id: int,
    u: int,
    k: Optional[int] = None,
    use_l1: bool = True,
    use_l2: bool = True,
    adaptive: bool = True,
    extra_candidates: Optional[Sequence[int]] = None,
) -> Dict[str, Any]:
    """θ-floor scoring of the candidates ``shard_id`` owns, for query ``u``.

    Pure function of ``(engine seed, u, shard assignment)`` — every
    shard sees the *full* candidate set (so the global <2k fallback
    decision and shell structure replicate exactly) but spends walk
    budget only on its owned slice.  Returns per-candidate record
    arrays in (distance, vertex) order plus the β-vector; values the
    floor never needed are NaN, and by the superset argument above the
    replay never reads those.
    """
    # CPU time, not wall clock: workers on an oversubscribed host spend
    # much of each request descheduled, and busy_seconds must mean "the
    # compute this shard performed" for the coordinator's critical-path
    # accounting to hold regardless of core count.
    start_time = time.process_time()
    graph, index, config = engine.graph, engine.index, engine.config
    seed = derive_seed(engine.seed, 11, u)
    if not 0 <= u < graph.n:
        raise VertexError(u, graph.n)
    k = k if k is not None else config.k
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")

    stats = QueryStats()
    candidates = _gather_candidates(
        graph, index, u, config, stats,
        list(extra_candidates) if extra_candidates is not None else None, k,
    )
    empty_f = np.empty(0, dtype=np.float64)
    result: Dict[str, Any] = {
        "v": np.empty(0, dtype=np.int64),
        "d": np.empty(0, dtype=np.int64),
        "bound": empty_f,
        "screen": empty_f,
        "refined": empty_f,
        "beta": None,
        "fallback_used": stats.fallback_used,
        "busy_seconds": 0.0,
    }
    if not candidates:
        result["busy_seconds"] = time.process_time() - start_time
        return result

    d_max = config.effective_d_max
    distances = bfs_distances(graph, u, direction="both", max_distance=d_max)

    l1 = None
    if use_l1:
        l1 = compute_alpha_beta(
            graph,
            u,
            config=config,
            seed=derive_seed(seed, u, 101),
            diagonal=engine.diagonal,
            distances=distances,
        )
    gamma = index.gamma if (index is not None and use_l2) else None
    estimator = SingleSourceEstimator(
        graph, u, config=config, seed=derive_seed(seed, u, 202),
        diagonal=engine.diagonal,
    )

    def candidate_distance(v: int) -> int:
        d = int(distances[v])
        return d if d != UNREACHABLE else d_max

    ordered = sorted(candidates, key=lambda v: (candidate_distance(v), v))
    theta = config.theta

    v_rows: List[np.ndarray] = []
    d_rows: List[np.ndarray] = []
    bound_rows: List[np.ndarray] = []
    screen_rows: List[np.ndarray] = []
    refined_rows: List[np.ndarray] = []

    position = 0
    terminated = False
    while position < len(ordered):
        d = candidate_distance(ordered[position])
        end = position
        while end < len(ordered) and candidate_distance(ordered[end]) == d:
            end += 1
        if l1 is not None and not terminated:
            # θ-floor termination: once even θ alone would stop the real
            # scan, any replay cutoff (≥ θ) stops at or before here.
            if float(l1.beta[min(d, l1.d_max):].max()) < theta:
                terminated = True
        shell_all = ordered[position:end]
        position = end
        owned = np.asarray(
            [v for v in shell_all if plan.shard_of(v) == shard_id], dtype=np.int64
        )
        if owned.size == 0:
            continue
        v_rows.append(owned)
        d_rows.append(np.full(owned.size, d, dtype=np.int64))
        if terminated:
            nan = np.full(owned.size, np.nan)
            bound_rows.append(nan)
            screen_rows.append(nan)
            refined_rows.append(nan.copy())
            continue

        bound = np.full(owned.size, trivial_bound(config.c, d))
        if l1 is not None:
            bound = np.minimum(bound, l1.bound(d))
        if gamma is not None:
            bound = np.minimum(bound, gamma.bound_many(u, owned))
        screen = np.full(owned.size, np.nan)
        refined = np.full(owned.size, np.nan)
        alive = bound >= theta
        if alive.any():
            survivors = owned[alive]
            if adaptive:
                scores = estimator.estimate_batch(survivors, R=config.r_screen)
                screen[alive] = scores
                promote = scores >= theta * config.screen_slack
                if promote.any():
                    refined[np.flatnonzero(alive)[promote]] = (
                        estimator.estimate_batch(survivors[promote], R=config.r_pair)
                    )
            else:
                refined[alive] = estimator.estimate_batch(
                    survivors, R=config.r_pair
                )
        bound_rows.append(bound)
        screen_rows.append(screen)
        refined_rows.append(refined)

    if v_rows:
        result["v"] = np.concatenate(v_rows)
        result["d"] = np.concatenate(d_rows)
        result["bound"] = np.concatenate(bound_rows)
        result["screen"] = np.concatenate(screen_rows)
        result["refined"] = np.concatenate(refined_rows)
    result["beta"] = l1.beta if l1 is not None else None
    result["busy_seconds"] = time.process_time() - start_time
    return result


def shard_pair(engine: SimRankEngine, u: int, v: int) -> float:
    """Worker-side single-pair score — the engine's exact derivation."""
    if int(u) == int(v):
        if not 0 <= int(u) < engine.graph.n:
            raise VertexError(int(u), engine.graph.n)
        return 1.0
    return single_pair_simrank(
        engine.graph,
        u,
        v,
        config=engine.config,
        seed=derive_seed(engine.seed, 13, u, v),
        diagonal=engine.diagonal,
    )


# ----------------------------------------------------------------------
# Worker process main loop
# ----------------------------------------------------------------------


def worker_main(conn: Any, shard_id: int) -> None:
    """Entry point of a spawned shard worker.

    Messages are dicts with an ``id``, an ``op``, and op-specific
    fields; every message gets exactly one reply
    ``{"id", "ok", "result" | "error"}``.  The parent detects death via
    the pipe (EOF), so this loop never swallows a crash silently.
    """
    from repro.shard.codec import engine_from_arrays, patch_engine_arrays
    from repro.shard.memory import SharedArrayBundle

    # epoch -> (bundle | None, engine, plan); patched epochs own no
    # segment (their arrays are process-local), so bundle is None.
    epochs: Dict[int, Any] = {}

    def reply(msg_id: int, result: Any) -> None:
        conn.send({"id": msg_id, "ok": True, "result": result})

    def reply_error(msg_id: int, exc: BaseException) -> None:
        conn.send(
            {"id": msg_id, "ok": False,
             "error": f"{type(exc).__name__}: {exc}"}
        )

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break  # parent died or closed the pipe; nothing left to serve
        msg_id = msg.get("id", -1)
        op = msg.get("op")
        try:
            if op == "stop":
                reply(msg_id, None)
                break
            elif op == "load_epoch":
                bundle = SharedArrayBundle.attach(msg["manifest"])
                engine = engine_from_arrays(bundle.arrays, msg["meta"])
                plan = ShardPlan.from_manifest(msg["plan"])
                epochs[msg["epoch"]] = (bundle, engine, plan)
                reply(msg_id, None)
            elif op == "patch":
                _, base_engine, _ = epochs[msg["base_epoch"]]
                delta = SharedArrayBundle.attach(msg["manifest"])
                try:
                    arrays = patch_engine_arrays(
                        base_engine, delta.arrays, msg["meta"]
                    )
                finally:
                    # The patched arrays are fresh copies; close() would
                    # scream (refcount escape) if any view leaked out.
                    del base_engine
                    delta.close()
                engine = engine_from_arrays(arrays, msg["meta"])
                plan = ShardPlan.from_manifest(msg["plan"])
                epochs[msg["epoch"]] = (None, engine, plan)
                reply(msg_id, None)
            elif op == "release_epoch":
                state = epochs.pop(msg["epoch"], None)
                if state is not None:
                    bundle, engine, plan = state
                    del state, engine, plan  # drop views before close
                    if bundle is not None:  # patched epochs own no segment
                        bundle.close()
                reply(msg_id, None)
            elif op == "query":
                bundle, engine, plan = epochs[msg["epoch"]]
                overrides = msg.get("overrides")
                if overrides:
                    # Query-time config carried by the coordinator (live
                    # tunables); a zero-copy view, never a mutation of
                    # the resident epoch engine.
                    engine = engine.with_config(**overrides)
                reply(
                    msg_id,
                    score_shard(
                        engine,
                        plan,
                        shard_id,
                        msg["u"],
                        k=msg.get("k"),
                        use_l1=msg.get("use_l1", True),
                        use_l2=msg.get("use_l2", True),
                        adaptive=msg.get("adaptive", True),
                        extra_candidates=msg.get("extra_candidates"),
                    ),
                )
            elif op == "pair":
                bundle, engine, plan = epochs[msg["epoch"]]
                overrides = msg.get("overrides")
                if overrides:
                    engine = engine.with_config(**overrides)
                reply(msg_id, shard_pair(engine, msg["u"], msg["v"]))
            elif op == "health":
                reply(
                    msg_id,
                    {"shard_id": shard_id, "epochs": sorted(epochs)},
                )
            elif op == "crash":  # repro: noqa R11 -- test-only hook: crash-isolation tests send it raw; no production sender exists by design
                conn.close()
                return
            else:
                reply_error(msg_id, ValueError(f"unknown op {op!r}"))
        except KeyError as exc:
            reply_error(
                msg_id, RuntimeError(f"epoch or field not loaded: {exc}")
            )
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            reply_error(msg_id, exc)
    conn.close()
