"""`repro.shard` — multi-process sharded serving of the top-k engine.

The single-process serve path (:mod:`repro.serve`) batches every query
onto one thread pool, so the GIL caps it at roughly one core of kernel
work.  This package breaks that ceiling while keeping the library's
strongest invariant intact: **a sharded answer is bit-identical to the
single-process engine's answer**, including the `QueryStats` counters.

How the pieces fit:

- :class:`~repro.shard.plan.ShardPlan` assigns every vertex to a shard
  (modulo partitioning) and serializes as a manifest;
- :class:`~repro.shard.memory.SharedArrayBundle` lays the engine's
  arrays (CSR graph, packed candidate index, γ table, diagonal) into
  one `multiprocessing.shared_memory` segment per epoch; workers attach
  the segment and rebuild a read-only engine over zero-copy views
  (:mod:`repro.shard.codec`);
- each worker scores only the candidates its shard *owns*, but at the
  conservative θ-floor cutoff (:func:`~repro.shard.worker.score_shard`);
  the coordinator replays the exact frozen-per-shell adaptive scan over
  the merged per-candidate records (:func:`~repro.shard.merge.replay_merge`),
  which is where bit-identity comes from — see `docs/serving.md`;
- :class:`~repro.shard.pool.ShardPool` owns the worker processes, the
  epoch lifecycle (publish / dual-epoch retention / release), and the
  scatter-gather query path;
- :class:`~repro.shard.lifecycle.ShardHandle` plugs the pool behind
  :class:`repro.serve.lifecycle.EngineHandle`, so snapshot swaps and
  dynamic-engine flushes propagate to every worker with zero downtime.
"""

from repro.shard.lifecycle import ShardedEngine, ShardHandle
from repro.shard.memory import SharedArrayBundle
from repro.shard.merge import replay_merge
from repro.shard.plan import ShardPlan
from repro.shard.pool import ShardPool
from repro.shard.worker import score_shard

__all__ = [
    "ShardPlan",
    "SharedArrayBundle",
    "ShardPool",
    "ShardedEngine",
    "ShardHandle",
    "score_shard",
    "replay_merge",
]
