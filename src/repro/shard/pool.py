"""`ShardPool` — worker processes, epoch lifecycle, scatter-gather.

One pool owns N spawned workers (spawn, not fork: the parent runs a
threaded server) connected by duplex pipes.  Each *publish* exports the
engine's arrays into a fresh shared-memory segment, broadcasts the
manifest, and waits for every worker to attach before the epoch becomes
current — so a query never races a half-loaded epoch.  Workers retain
the previous epoch too; a published epoch E is *released* (views
dropped, segment unlinked) only once E+2 exists and every in-flight
query pinned to E has drained.  That is the zero-downtime contract:
swaps and flushes never invalidate a snapshot someone is reading.

Failure policy: a dead worker fails its pending queries with
:class:`ShardCrashError` immediately (the per-worker reader thread sees
EOF on the pipe) and every later query fails fast — a clean error,
never a hang, and never a silently *partial* top-k, which would break
the bit-identity contract.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeoutError
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import SimRankConfig
from repro.core.engine import SimRankEngine
from repro.core.query import TopKResult
from repro.errors import (
    ShardCrashError,
    ShardError,
    ShardTimeoutError,
    VertexError,
)
from repro.obs import instrument as obs
from repro.shard.codec import config_to_dict, delta_to_arrays, engine_to_arrays
from repro.shard.memory import SharedArrayBundle
from repro.shard.merge import replay_merge
from repro.shard.plan import ShardPlan
from repro.shard.worker import worker_main
from repro.utils.sync import make_lock


__all__ = ["ShardPool"]


class _Worker:
    """Parent-side state of one shard worker process."""

    def __init__(self, pool: "ShardPool", shard_id: int) -> None:
        ctx = multiprocessing.get_context("spawn")
        self.pool = pool
        self.shard_id = shard_id
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, shard_id),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.alive = True
        self.pending: Dict[int, Future] = {}  # locked-by: _lock
        self._lock = make_lock(f"shard._Worker[{shard_id}]._lock")
        self.reader = threading.Thread(
            target=self._read_loop, name=f"repro-shard-reader-{shard_id}", daemon=True
        )
        self.reader.start()

    def request(self, msg: Dict[str, Any]) -> Future:
        """Send one message; the returned future resolves with the reply."""
        future: Future = Future()
        msg_id = next(self.pool._ids)
        msg = dict(msg, id=msg_id)
        with self._lock:
            if not self.alive:
                future.set_exception(
                    ShardCrashError(f"shard {self.shard_id} worker is dead")
                )
                return future
            self.pending[msg_id] = future
            try:
                self.conn.send(msg)
            except (OSError, ValueError, BrokenPipeError) as exc:
                self.pending.pop(msg_id, None)
                future.set_exception(
                    ShardCrashError(f"shard {self.shard_id} pipe broken: {exc}")
                )
        return future

    def _read_loop(self) -> None:
        while True:
            try:
                reply = self.conn.recv()
            except (EOFError, OSError):
                break
            future = None
            with self._lock:
                future = self.pending.pop(reply.get("id", -1), None)
            if future is None:
                continue
            if reply.get("ok"):
                future.set_result(reply.get("result"))
            else:
                future.set_exception(
                    ShardError(f"shard {self.shard_id}: {reply.get('error')}")
                )
        # Pipe is gone: clean shutdown or a crash.
        crashed = False
        with self._lock:
            if self.alive and not self.pool._closing:
                crashed = True
            self.alive = False
            drained = list(self.pending.values())
            self.pending.clear()
        for future in drained:
            future.set_exception(
                ShardCrashError(
                    f"shard {self.shard_id} worker died with requests in flight"
                )
            )
        if crashed and obs.OBS.enabled:
            obs.record_shard_crash()


class ShardPool:
    """A pool of shard workers serving one engine, epoch by epoch.

    ``ShardPool(engine, n_shards)`` spawns the workers and publishes the
    engine as epoch 0; ``publish(new_engine)`` rolls all workers to a
    new epoch without dropping a query.  Requires an integer (or None)
    engine seed, like :meth:`SimRankEngine.top_k_all_parallel` — with
    ``None`` the pool fixes a random integer seed at publish time so all
    shards still derive identical streams (answers are then
    deterministic per pool, though not reproducible across runs).
    """

    def __init__(
        self,
        engine: SimRankEngine,
        n_shards: int,
        gather_timeout: float = 60.0,
        delta_fraction: float = 0.25,
    ) -> None:
        if n_shards < 1:
            raise ShardError(f"n_shards must be >= 1, got {n_shards}")
        if not 0.0 <= delta_fraction <= 1.0:
            raise ShardError(
                f"delta_fraction must be in [0, 1], got {delta_fraction}"
            )
        if engine.seed is not None and not isinstance(engine.seed, int):
            raise ValueError("ShardPool needs an integer (or None) engine seed")
        if not engine.is_preprocessed:
            engine.preprocess()
        self.n_shards = n_shards
        self.gather_timeout = gather_timeout
        self.delta_fraction = delta_fraction
        self._fallback_seed = int.from_bytes(os.urandom(4), "little")
        self._ids = itertools.count(1)
        self._closing = False
        self._lock = make_lock("ShardPool._lock")
        self._epochs: Dict[int, Dict[str, Any]] = {}  # locked-by: _lock
        self._current_epoch: Optional[int] = None  # locked-by: _lock
        self._overrides: Dict[str, Any] = {}  # locked-by: _lock
        self.engine = engine  # the latest published (local) engine
        self.plan = ShardPlan(n=engine.graph.n, n_shards=n_shards)
        self.workers = [_Worker(self, i) for i in range(n_shards)]
        try:
            self.publish(engine, epoch=0)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Epoch lifecycle
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        with self._lock:
            if self._current_epoch is None:
                raise ShardError("pool has no published epoch")
            return self._current_epoch

    def publish(self, engine: SimRankEngine, epoch: Optional[int] = None) -> int:
        """Export ``engine`` to shared memory and roll every worker to it.

        Blocks until all workers have attached; only then does the new
        epoch become current.  Older epochs are swept (released on the
        workers, unlinked here) once they fall two generations behind
        and their in-flight queries drain.
        """
        if self._closing:
            raise ShardError("pool is closed")
        if engine.seed is not None and not isinstance(engine.seed, int):
            raise ValueError("ShardPool needs an integer (or None) engine seed")
        seed = engine.seed if isinstance(engine.seed, int) else self._fallback_seed
        with self._lock:
            if epoch is None:
                epoch = 0 if self._current_epoch is None else self._current_epoch + 1
            if epoch in self._epochs:
                raise ShardError(f"epoch {epoch} is already published")
        arrays, meta = engine_to_arrays(engine, seed)
        bundle = SharedArrayBundle.export(arrays)
        plan = ShardPlan(n=engine.graph.n, n_shards=self.n_shards)
        msg = {
            "op": "load_epoch",
            "epoch": epoch,
            "manifest": bundle.manifest(),
            "meta": meta,
            "plan": plan.to_manifest(),
        }
        try:
            self._gather([w.request(msg) for w in self.workers], "load_epoch")
        except ShardError:
            bundle.close()
            raise
        with self._lock:
            self._epochs[epoch] = {"bundle": bundle, "inflight": 0, "plan": plan}
            self._current_epoch = epoch
            self.engine = engine
            self.plan = plan
        self._sweep_releases()
        self._record_epoch_gauges()
        return epoch

    def publish_delta(
        self,
        engine: SimRankEngine,
        stats: Any,
        epoch: Optional[int] = None,
    ) -> Optional[int]:
        """Roll every worker forward by shipping only one flush's delta.

        ``engine`` is the patched engine a
        :meth:`~repro.core.dynamic.DynamicSimRankEngine.flush` produced
        and ``stats`` its :class:`~repro.core.dynamic.FlushStats`.
        Instead of re-exporting the O(n + m) array set, the pool exports
        an O(Δ + affected-rows) delta segment — edited edges plus the
        affected vertices' fresh signature/γ rows — and workers patch
        their resident base epoch in place (:func:`patch_engine_arrays`),
        arriving at arrays bit-identical to a full
        :func:`engine_to_arrays` of ``engine``.

        Returns the new epoch, or **None** when the delta is not
        eligible — a full rebuild, an affected set above
        ``delta_fraction`` of all vertices (re-export is cheaper), or a
        base mismatch — in which case the caller falls back to
        :meth:`publish`.  Worker-side failures raise loudly; nothing is
        published partially (the epoch only becomes current after every
        worker acks).
        """
        if self._closing:
            raise ShardError("pool is closed")
        if engine.seed is not None and not isinstance(engine.seed, int):
            raise ValueError("ShardPool needs an integer (or None) engine seed")
        new_n = engine.graph.n
        if (
            getattr(stats, "full_rebuild", True)
            or len(stats.affected) > self.delta_fraction * new_n
        ):
            return None
        seed = engine.seed if isinstance(engine.seed, int) else self._fallback_seed
        with self._lock:
            base_epoch = self._current_epoch
            if base_epoch is None:
                return None
            base_state = self._epochs.get(base_epoch)
            if epoch is None:
                epoch = base_epoch + 1
            if epoch in self._epochs:
                raise ShardError(f"epoch {epoch} is already published")
        # The delta was computed against the currently published graph;
        # anything else (a missed epoch, a seed change) disqualifies it.
        if (
            base_state is None
            or stats.old_n != base_state["plan"].n
            or stats.new_n != new_n
        ):
            return None
        arrays = delta_to_arrays(
            engine, stats.adds, stats.removes, stats.affected, stats.old_n
        )
        bundle = SharedArrayBundle.export(arrays, name_hint="repro-shard-delta")
        plan = ShardPlan(n=new_n, n_shards=self.n_shards)
        msg = {
            "op": "patch",
            "epoch": epoch,
            "base_epoch": base_epoch,
            "manifest": bundle.manifest(),
            "meta": {
                "n": new_n,
                "seed": int(seed),
                "config": config_to_dict(engine.config),
                "build_seconds": engine.index.build_seconds,
            },
            "plan": plan.to_manifest(),
        }
        try:
            self._gather([w.request(msg) for w in self.workers], "patch")
        finally:
            # Workers copied what they needed; the delta segment's whole
            # life is one patch broadcast.
            bundle.close()
        with self._lock:
            # Patched epochs own no parent-side segment: workers hold
            # process-local arrays, there is nothing to unlink on release.
            self._epochs[epoch] = {"bundle": None, "inflight": 0, "plan": plan}
            self._current_epoch = epoch
            self.engine = engine
            self.plan = plan
        if obs.OBS.enabled:
            obs.record_shard_delta_publish()
        self._sweep_releases()
        self._record_epoch_gauges()
        return epoch

    def set_overrides(self, overrides: Dict[str, Any]) -> None:
        """Replace the query-time config overrides every scatter carries.

        The values travel *inside each query message* and the
        coordinator replays with the exact set it scattered, so worker
        and merge configs can never disagree mid-propagation — the
        bit-identity contract of :mod:`repro.shard.merge` holds through
        a live tune.  Validated by building the config view up front.
        """
        merged = dict(overrides)
        self.engine.config.with_(**merged)  # raises on a bad field/value
        with self._lock:
            self._overrides = merged

    def query_config(self) -> "SimRankConfig":
        """The effective config queries run under (engine + overrides)."""
        with self._lock:
            overrides = dict(self._overrides)
        return (
            self.engine.config.with_(**overrides) if overrides else self.engine.config
        )

    def _pin(self, epoch: Optional[int]) -> int:
        with self._lock:
            if self._current_epoch is None:
                raise ShardError("pool has no published epoch")
            pinned = self._current_epoch if epoch is None else epoch
            state = self._epochs.get(pinned)
            if state is None:
                raise ShardError(
                    f"epoch {pinned} is no longer resident (current is "
                    f"{self._current_epoch}); the snapshot outlived the "
                    "pool's two-epoch retention window"
                )
            state["inflight"] += 1
            return pinned

    def _unpin(self, epoch: int) -> None:
        with self._lock:
            state = self._epochs.get(epoch)
            if state is not None:
                state["inflight"] -= 1
        self._sweep_releases()

    def _sweep_releases(self) -> None:
        """Release every epoch ≥2 generations old with no in-flight pins."""
        to_release: List[int] = []
        with self._lock:
            if self._current_epoch is None:
                return
            for e, state in list(self._epochs.items()):
                if e <= self._current_epoch - 2 and state["inflight"] == 0:
                    to_release.append(e)
        for e in to_release:
            with self._lock:
                state = self._epochs.pop(e, None)
            if state is None:
                continue
            futures = [
                w.request({"op": "release_epoch", "epoch": e})
                for w in self.workers
                if w.alive
            ]
            try:
                self._gather(futures, "release_epoch")
            finally:
                if state["bundle"] is not None:
                    state["bundle"].close()

    # ------------------------------------------------------------------
    # Query plane
    # ------------------------------------------------------------------

    def top_k(
        self,
        u: int,
        k: Optional[int] = None,
        epoch: Optional[int] = None,
        use_l1: bool = True,
        use_l2: bool = True,
        adaptive: bool = True,
        extra_candidates: Optional[Sequence[int]] = None,
        timings_out: Optional[Dict[str, Any]] = None,
    ) -> TopKResult:
        """Scatter a top-k query to every shard and replay-merge the answer.

        Bit-identical to ``engine.top_k(u, k)`` on the published engine
        (same integer seed), including the stats counters; see
        :mod:`repro.shard.merge`.
        """
        start = time.perf_counter()
        n = self.plan.n
        if not 0 <= int(u) < n:
            raise VertexError(int(u), n)
        # Capture the override set once: the same dict travels in every
        # scatter message AND parameterises the replay below, so worker
        # and coordinator configs agree even if set_overrides() lands
        # mid-query.
        with self._lock:
            overrides = dict(self._overrides)
        config = (
            self.engine.config.with_(**overrides) if overrides else self.engine.config
        )
        resolved_k = k if k is not None else config.k
        if resolved_k < 1:
            raise ValueError(f"k must be >= 1, got {resolved_k}")
        pinned = self._pin(epoch)
        try:
            msg = {
                "op": "query",
                "epoch": pinned,
                "u": int(u),
                "k": resolved_k,
                "use_l1": use_l1,
                "use_l2": use_l2,
                "adaptive": adaptive,
                "overrides": overrides or None,
                "extra_candidates": (
                    list(extra_candidates) if extra_candidates is not None else None
                ),
            }
            results = self._gather(
                [w.request(msg) for w in self.workers], "query"
            )
            merged = replay_merge(
                int(u),
                resolved_k,
                config,
                results,
                use_l1=use_l1,
                adaptive=adaptive,
            )
        finally:
            self._unpin(pinned)
        elapsed = time.perf_counter() - start
        merged.stats.elapsed_seconds = elapsed
        if timings_out is not None:
            timings_out["wall_seconds"] = elapsed
            timings_out["busy_seconds"] = [
                float(r["busy_seconds"]) for r in results
            ]
        if obs.OBS.enabled:
            obs.record_query(merged.stats)
            obs.record_shard_query(fanout=len(self.workers), seconds=elapsed)
        return merged

    def single_pair(self, u: int, v: int, epoch: Optional[int] = None) -> float:
        """Route ``s(u, v)`` to the shard that owns ``u``."""
        n = self.plan.n
        for vertex in (u, v):
            if not 0 <= int(vertex) < n:
                raise VertexError(int(vertex), n)
        if int(u) == int(v):
            return 1.0
        with self._lock:
            overrides = dict(self._overrides)
        pinned = self._pin(epoch)
        try:
            worker = self.workers[self.plan.shard_of(int(u))]
            future = worker.request(
                {
                    "op": "pair",
                    "epoch": pinned,
                    "u": int(u),
                    "v": int(v),
                    "overrides": overrides or None,
                }
            )
            (value,) = self._gather([future], "pair")
        finally:
            self._unpin(pinned)
        return float(value)

    # ------------------------------------------------------------------
    # Health / shutdown
    # ------------------------------------------------------------------

    def health(self, timeout: float = 2.0) -> List[Dict[str, Any]]:
        """Liveness + loaded epochs per shard (never raises for a dead one)."""
        rows: List[Dict[str, Any]] = []
        futures = []
        for w in self.workers:
            futures.append(w.request({"op": "health"}) if w.alive else None)
        for w, future in zip(self.workers, futures):
            row: Dict[str, Any] = {"shard": w.shard_id, "alive": False, "epoch": None}
            if future is not None:
                try:
                    info = future.result(timeout=timeout)
                    epochs = info.get("epochs", [])
                    row["alive"] = True
                    row["epoch"] = max(epochs) if epochs else None
                except Exception:
                    pass
            rows.append(row)
        self._record_epoch_gauges(rows)
        return rows

    def _record_epoch_gauges(
        self, rows: Optional[List[Dict[str, Any]]] = None
    ) -> None:
        if not obs.OBS.enabled:
            return
        with self._lock:
            current = self._current_epoch
        if current is None:
            return
        if rows is None:
            # Cheap local view: a live worker is always at the current
            # epoch once publish() returned (publish blocks on acks).
            worker_epochs = [current for w in self.workers if w.alive]
        else:
            worker_epochs = [
                int(r["epoch"]) for r in rows if r["alive"] and r["epoch"] is not None
            ]
        floor = min(worker_epochs) if worker_epochs else current
        obs.set_shard_epochs(current=current, workers_min=floor)

    def close(self) -> None:
        """Stop every worker and unlink every segment (idempotent)."""
        if self._closing:
            return
        self._closing = True
        stop_futures = [
            w.request({"op": "stop"}) for w in self.workers if w.alive
        ]
        for future in stop_futures:
            try:
                future.result(timeout=5.0)
            except Exception:
                pass
        for w in self.workers:
            w.process.join(timeout=5.0)
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=5.0)
            try:
                w.conn.close()
            except OSError:
                pass
        with self._lock:
            states = list(self._epochs.values())
            self._epochs.clear()
        for state in states:
            if state["bundle"] is not None:
                state["bundle"].close()

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ShardPool(n_shards={self.n_shards}, "
                f"epoch={self._current_epoch}, closed={self._closing})"
            )

    # ------------------------------------------------------------------

    def _gather(self, futures: Sequence[Future], what: str) -> List[Any]:
        """Wait for all futures under one deadline; first error wins."""
        deadline = time.monotonic() + self.gather_timeout
        results: List[Any] = []
        for future in futures:
            remaining = deadline - time.monotonic()
            try:
                results.append(future.result(timeout=max(0.0, remaining)))
            except (_FutureTimeoutError, TimeoutError):
                raise ShardTimeoutError(
                    f"{what} did not complete within {self.gather_timeout:.1f}s"
                ) from None
        return results
