"""Shard planning: which worker owns which vertices.

The partition only decides *who scores whom* — every worker holds the
full graph and index via the shared segment, so any assignment is
correct.  Modulo partitioning is the default because candidate sets are
roughly degree-ordered neighborhoods: striding them across shards
balances the per-shell work far better than contiguous ranges, which
would hand whole hub neighborhoods to one worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.errors import ConfigError


__all__ = ["ShardPlan"]

_STRATEGIES = ("modulo",)


@dataclass(frozen=True)
class ShardPlan:
    """Immutable vertex→shard assignment for ``n`` vertices.

    ``shard_of(v) = v mod n_shards`` under the (only) ``modulo``
    strategy.  The plan travels to workers inside the epoch manifest,
    so both sides always agree on ownership.
    """

    n: int
    n_shards: int
    strategy: str = "modulo"

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ConfigError(f"vertex count must be nonnegative, got {self.n}")
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.strategy not in _STRATEGIES:
            raise ConfigError(
                f"unknown shard strategy {self.strategy!r}; known: {_STRATEGIES}"
            )

    def shard_of(self, vertex: int) -> int:
        """The shard that owns (scores) ``vertex``."""
        return int(vertex) % self.n_shards

    def owned(self, shard_id: int) -> np.ndarray:
        """All vertices owned by ``shard_id``, ascending (int64)."""
        if not 0 <= shard_id < self.n_shards:
            raise ConfigError(
                f"shard_id {shard_id} out of range for {self.n_shards} shards"
            )
        return np.arange(shard_id, self.n, self.n_shards, dtype=np.int64)

    def owned_mask(self, vertices: np.ndarray, shard_id: int) -> np.ndarray:
        """Boolean mask of which ``vertices`` belong to ``shard_id``."""
        return np.asarray(vertices, dtype=np.int64) % self.n_shards == shard_id

    def to_manifest(self) -> Dict[str, Any]:
        """JSON/pickle-safe form for the epoch manifest."""
        return {"n": self.n, "n_shards": self.n_shards, "strategy": self.strategy}

    @classmethod
    def from_manifest(cls, manifest: Dict[str, Any]) -> "ShardPlan":
        try:
            return cls(
                n=int(manifest["n"]),
                n_shards=int(manifest["n_shards"]),
                strategy=str(manifest.get("strategy", "modulo")),
            )
        except KeyError as exc:
            raise ConfigError(f"shard plan manifest is missing field {exc}") from exc
