"""The paper's comparators, implemented from their original papers:

- :mod:`repro.baselines.naive` — Jeh–Widom's original iteration [13];
- :mod:`repro.baselines.partial_sums` — Lizorkin et al.'s partial-sums
  memoization [26];
- :mod:`repro.baselines.fogaras_racz` — Fogaras–Rácz Monte-Carlo with
  coupled fingerprint walks [9] (the single-pair/single-source
  state of the art the paper benchmarks against);
- :mod:`repro.baselines.yu_allpairs` — Yu et al.'s memory-hungry
  all-pairs iteration [37] (the all-pairs state of the art);
- :mod:`repro.baselines.matrix_simrank` — matrix-form reference plus the
  *incorrect* linear recursion studied in §3.3.
"""

from repro.baselines.fogaras_racz import FingerprintIndex
from repro.baselines.naive import naive_simrank
from repro.baselines.partial_sums import partial_sums_simrank
from repro.baselines.yu_allpairs import YuAllPairs, yu_memory_required

__all__ = [
    "FingerprintIndex",
    "YuAllPairs",
    "naive_simrank",
    "partial_sums_simrank",
    "yu_memory_required",
]
