"""Fogaras–Rácz Monte-Carlo SimRank with coupled fingerprint walks [9].

The paper's single-pair / single-source state of the art (Table 4,
middle column).  The method precomputes R' *fingerprints*: in
fingerprint r, every vertex performs a reverse random walk, but the
walks are **coupled** — at step t all walkers standing on the same
vertex w move to the *same* randomly chosen in-neighbor ``g_{r,t}(w)``.
Coupling makes walks coalesce on first meeting, which

- preserves the pairwise first-meeting-time distribution of independent
  walks (pairwise independence is all the estimator needs), and
- lets one fingerprint be stored as T functions V -> V instead of n
  separate paths (the "fingerprint tree" compaction).

The SimRank estimate is the random-surfer formula (eq. 3):

    s(u, v) ≈ (1/R') Σ_r c^{τ_r(u,v)},   τ = first meeting step.

Complexities, as quoted in Section 8.3: preprocessing O(n R') time and
O(n R') space (T is a constant), query O(T n R') for single-source.
The O(n R' T) index is exactly why the paper's comparison shows this
baseline running out of memory 10–20× earlier than the proposed index.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, VertexError
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive_int

DEAD = -1


def fingerprint_memory_required(n: int, num_fingerprints: int, T: int) -> int:
    """Bytes of the fingerprint index: n · R' · T int32 slots."""
    return 4 * n * num_fingerprints * T


class FingerprintIndex:
    """Precomputed coupled-walk fingerprints supporting SimRank queries.

    Parameters mirror [9] as used in the paper's experiments:
    ``num_fingerprints`` is R' (= 100 in Section 8), ``T`` the walk
    horizon, ``c`` the decay factor.  ``memory_budget`` (bytes) makes the
    constructor refuse oversized indexes the way the real system dies on
    allocation — the scalability experiment uses this to reproduce the
    "—" entries of Table 4.
    """

    def __init__(
        self,
        graph: CSRGraph,
        num_fingerprints: int = 100,
        T: int = 11,
        c: float = 0.6,
        seed: SeedLike = None,
        memory_budget: Optional[int] = None,
    ) -> None:
        check_positive_int("num_fingerprints", num_fingerprints)
        check_positive_int("T", T)
        check_fraction("c", c)
        required = fingerprint_memory_required(graph.n, num_fingerprints, T)
        if memory_budget is not None and required > memory_budget:
            raise MemoryError(
                f"fingerprint index needs {required} bytes "
                f"> budget {memory_budget} (n={graph.n}, R'={num_fingerprints}, T={T})"
            )
        self.graph = graph
        self.num_fingerprints = num_fingerprints
        self.T = T
        self.c = c
        self._rng = ensure_rng(seed)
        # steps[r, t - 1] is the coupled transition g_{r,t}: V -> V (DEAD
        # where the vertex has no in-links).
        self.steps = np.empty((num_fingerprints, T, graph.n), dtype=np.int32)
        self._build()

    def _build(self) -> None:
        indptr = self.graph.in_indptr
        indices = self.graph.in_indices
        degrees = self.graph.in_degrees
        n = self.graph.n
        has_in = degrees > 0
        for r in range(self.num_fingerprints):
            for t in range(self.T):
                g = np.full(n, DEAD, dtype=np.int32)
                offsets = (self._rng.random(n) * np.maximum(degrees, 1)).astype(np.int64)
                g[has_in] = indices[indptr[:-1][has_in] + offsets[has_in]]
                self.steps[r, t] = g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _check(self, vertex: int) -> int:
        vertex = int(vertex)
        if not 0 <= vertex < self.graph.n:
            raise VertexError(vertex, self.graph.n)
        return vertex

    def single_pair(self, u: int, v: int) -> float:
        """Estimate s(u, v) = E[c^τ] over all fingerprints, vectorised in r."""
        u = self._check(u)
        v = self._check(v)
        if u == v:
            return 1.0
        R = self.num_fingerprints
        pos_u = np.full(R, u, dtype=np.int64)
        pos_v = np.full(R, v, dtype=np.int64)
        met_weight = np.zeros(R)
        unmet = np.ones(R, dtype=bool)
        fingerprints = np.arange(R)
        for t in range(1, self.T + 1):
            layer = self.steps[:, t - 1, :]
            alive = unmet & (pos_u >= 0) & (pos_v >= 0)
            if not alive.any():
                break
            pos_u = np.where(pos_u >= 0, layer[fingerprints, np.maximum(pos_u, 0)], DEAD)
            pos_v = np.where(pos_v >= 0, layer[fingerprints, np.maximum(pos_v, 0)], DEAD)
            meeting = unmet & (pos_u >= 0) & (pos_u == pos_v)
            met_weight[meeting] = self.c**t
            unmet &= ~meeting
        return float(met_weight.mean())

    def single_source(self, u: int) -> np.ndarray:
        """Estimate s(u, ·) for every vertex — the O(T n R') sweep of §8.3.

        For each fingerprint, all n walkers advance together through the
        coupled transitions; a vertex scores c^t the first step its
        walker lands on the query walker's position.
        """
        u = self._check(u)
        n = self.graph.n
        scores = np.zeros(n)
        for r in range(self.num_fingerprints):
            pos = np.arange(n, dtype=np.int64)
            pos_u = u
            unmet = np.ones(n, dtype=bool)
            unmet[u] = False
            for t in range(1, self.T + 1):
                layer = self.steps[r, t - 1]
                pos_u = int(layer[pos_u]) if pos_u >= 0 else DEAD
                if pos_u < 0:
                    break
                alive = pos >= 0
                pos = np.where(alive, layer[np.maximum(pos, 0)], DEAD)
                meeting = unmet & (pos == pos_u)
                if meeting.any():
                    scores[meeting] += self.c**t
                    unmet &= ~meeting
                if not unmet.any():
                    break
        scores /= self.num_fingerprints
        scores[u] = 1.0
        return scores

    def top_k(self, u: int, k: int) -> List[Tuple[int, float]]:
        """Top-k by the fingerprint single-source estimate (u excluded)."""
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        scores = self.single_source(u)
        order = sorted(
            (v for v in range(self.graph.n) if v != u),
            key=lambda v: (-scores[v], v),
        )
        return [(v, float(scores[v])) for v in order[:k]]

    def high_score_vertices(self, u: int, threshold: float) -> List[int]:
        """Vertices scoring at least ``threshold`` (Table 3's metric)."""
        scores = self.single_source(u)
        return [int(v) for v in np.nonzero(scores >= threshold)[0] if int(v) != u]

    def nbytes(self) -> int:
        """Index payload bytes (the Table 4 'Index' column for [9])."""
        return int(self.steps.nbytes)
