"""Lizorkin et al.'s partial-sums SimRank [26].

The O(T · min{nm, n^3/log n}) row of Table 1.  The observation: the
naive double sum recomputes ``Σ_{u'∈I(u)} s_k(u', v')`` for every v.
Memoizing the *partial sum*

    Partial_u[w] = Σ_{u'∈I(u)} s_k(u', w)        (one vector per u)

turns the update into

    s_{k+1}(u, v) = c / (|I(u)| |I(v)|) · Σ_{v'∈I(v)} Partial_u[v'],

so each iteration costs O(n m) instead of O(n^2 d^2).  We keep the
memoization structure explicit (one partial-sum vector per source
vertex) rather than collapsing it into a matrix product, because the
point of carrying this baseline is to measure that structure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.core.exact import iterations_for_tolerance
from repro.utils.validation import check_fraction


def partial_sums_simrank(
    graph: CSRGraph,
    c: float = 0.6,
    iterations: Optional[int] = None,
    tol: float = 1e-7,
) -> np.ndarray:
    """All-pairs SimRank with partial-sums memoization.

    Output agrees with :func:`repro.baselines.naive.naive_simrank` and
    :func:`repro.core.exact.exact_simrank` up to the iteration count.
    """
    check_fraction("c", c)
    k = iterations if iterations is not None else iterations_for_tolerance(c, tol)
    n = graph.n
    in_lists = [graph.in_neighbors(v) for v in range(n)]
    in_degrees = graph.in_degrees.astype(np.float64)
    S = np.eye(n)
    for _ in range(k):
        S_next = np.zeros_like(S)
        # Phase 1: memoize one partial-sum vector per source vertex.
        partials = np.zeros((n, n))
        for u in range(n):
            I_u = in_lists[u]
            if len(I_u):
                partials[u] = S[I_u].sum(axis=0)
        # Phase 2: every pair reuses the memoized vectors.
        for u in range(n):
            if in_degrees[u] == 0:
                continue
            partial_u = partials[u]
            for v in range(n):
                if v == u or in_degrees[v] == 0:
                    continue
                S_next[u, v] = (
                    c * partial_u[in_lists[v]].sum() / (in_degrees[u] * in_degrees[v])
                )
        np.fill_diagonal(S_next, 1.0)
        S = S_next
    return S
