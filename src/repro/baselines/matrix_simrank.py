"""Matrix-form references, including the *incorrect* recursion of §3.3.

Several prior papers ([10, 12, 19, 35, 36]) "define" SimRank as

    S' = c P^T S' P + (1 - c) I,

which Section 3.3 shows is wrong (S' does not have a unit diagonal —
Example 1 is the counterexample) yet harmless for top-k ranking because
it is the linear formulation with the approximation D ≈ (1-c)I, i.e. a
near-uniform rescaling of the true scores.  Figure 1 is precisely the
scatter of these two quantities; this module computes both sides.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.core.exact import exact_simrank, iterations_for_tolerance
from repro.core.linear import all_pairs_series
from repro.utils.validation import check_fraction


def incorrect_linear_simrank(
    graph: CSRGraph,
    c: float = 0.6,
    tol: float = 1e-7,
) -> np.ndarray:
    """The §3.3 'approximate SimRank': fixed point of S' = cP^T S'P + (1-c)I.

    Equals the truncated series with D = (1-c)I once the tail is below
    ``tol``; diagonal entries are generally *not* one (Example 1).
    """
    check_fraction("c", c)
    T = iterations_for_tolerance(c, tol * (1.0 - c))
    return all_pairs_series(graph, c=c, T=T, diagonal=None)


def exact_vs_approx_pairs(
    graph: CSRGraph,
    c: float = 0.6,
    score_floor: float = 1e-3,
    max_pairs: Optional[int] = None,
) -> np.ndarray:
    """(exact, approx) score pairs for off-diagonal entries above a floor.

    The raw data behind Figure 1: every returned row is one scatter
    point.  ``score_floor`` keeps only 'highly similar vertices' as the
    figure does; ``max_pairs`` caps output for plotting.
    """
    exact = exact_simrank(graph, c=c)
    approx = incorrect_linear_simrank(graph, c=c)
    n = graph.n
    mask = exact >= score_floor
    np.fill_diagonal(mask, False)
    rows, cols = np.nonzero(mask)
    pairs = np.column_stack([exact[rows, cols], approx[rows, cols]])
    # Deduplicate symmetric pairs deterministically.
    keep = rows < cols
    pairs = pairs[keep]
    if max_pairs is not None and len(pairs) > max_pairs:
        pairs = pairs[:max_pairs]
    return pairs
