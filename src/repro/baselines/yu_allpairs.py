"""Yu et al.'s space/time-efficient all-pairs SimRank [37].

The all-pairs state of the art the paper benchmarks against in
Section 8.3: O(T n m) time, O(n^2) space.  The algorithm iterates the
matrix fixed point

    S_{k+1} = (c P^T S_k P) ∨ I

with a dense score matrix and a sparse transition matrix, which is the
same complexity class as [37]'s optimized iteration (their further
constant-factor tricks — fast matrix multiplication per [31, 32] — do
not change the O(n^2) memory wall that Table 4 exposes).

The defining property reproduced here is that **memory is the binding
constraint and is known in advance**: ``memory_required(n)`` is the
8·n² bytes of the dense matrix (double buffered: 16·n²), and the
constructor refuses to run past a budget, which is exactly how the
paper's Table 4 rows turn into "—" for graphs beyond ~10^6 edges.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, VertexError
from repro.graph.csr import CSRGraph
from repro.core.exact import iterations_for_tolerance
from repro.utils.validation import check_fraction


def yu_memory_required(n: int) -> int:
    """Bytes for the double-buffered dense score matrix: 2 · 8 · n²."""
    return 16 * n * n


class YuAllPairs:
    """All-pairs SimRank with an explicit O(n^2) memory footprint."""

    def __init__(
        self,
        graph: CSRGraph,
        c: float = 0.6,
        iterations: Optional[int] = None,
        tol: float = 1e-7,
        memory_budget: Optional[int] = None,
    ) -> None:
        check_fraction("c", c)
        required = yu_memory_required(graph.n)
        if memory_budget is not None and required > memory_budget:
            raise MemoryError(
                f"all-pairs matrix needs {required} bytes > budget {memory_budget} "
                f"(n={graph.n})"
            )
        self.graph = graph
        self.c = c
        self.iterations = (
            iterations if iterations is not None else iterations_for_tolerance(c, tol)
        )
        self._S: Optional[np.ndarray] = None

    def compute(self) -> np.ndarray:
        """Run the fixed point; the result is cached for repeated queries."""
        P = self.graph.transition_matrix()
        S = np.eye(self.graph.n)
        for _ in range(self.iterations):
            S = self.c * (P.T @ (P.T @ S.T).T)
            np.fill_diagonal(S, 1.0)
        self._S = S
        return S

    @property
    def matrix(self) -> np.ndarray:
        """The computed all-pairs matrix (computes on first access)."""
        if self._S is None:
            self.compute()
        assert self._S is not None
        return self._S

    def single_source(self, u: int) -> np.ndarray:
        """Row u of the all-pairs matrix."""
        if not 0 <= u < self.graph.n:
            raise VertexError(u, self.graph.n)
        return self.matrix[u]

    def top_k(self, u: int, k: int) -> List[Tuple[int, float]]:
        """Top-k similar vertices by the all-pairs matrix (u excluded)."""
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        scores = self.single_source(u)
        order = sorted(
            (v for v in range(self.graph.n) if v != u),
            key=lambda v: (-scores[v], v),
        )
        return [(v, float(scores[v])) for v in order[:k]]

    def nbytes(self) -> int:
        """Actual bytes held by the computed matrix (0 before compute)."""
        return int(self._S.nbytes) if self._S is not None else 0
