"""Li et al.'s iterative single-pair SimRank [21] — Table 1's first row.

The "random surfer pair (iterative)" method: to evaluate one score
s(u, v), expand the SimRank recursion over the *pair graph* — states
are vertex pairs, and (a, b) steps to every in-neighbor pair
(a', b') with weight 1/(|I(a)||I(b)|).  Iterating T levels of this
expansion touches only pairs reachable from (u, v) by simultaneous
reverse steps, which is how the method avoids materialising the O(n²)
matrix; its worst case is the paper's quoted O(T d² n²) when the
reachable pair set saturates.

Role in this repository: an independent oracle for single-pair scores
(it never goes through our matrix or Monte-Carlo code paths) and the
cost yardstick that motivates Section 4's size-independent estimator.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.exact import iterations_for_tolerance
from repro.errors import VertexError
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_fraction


def li_single_pair(
    graph: CSRGraph,
    u: int,
    v: int,
    c: float = 0.6,
    iterations: Optional[int] = None,
    tol: float = 1e-7,
    max_pairs: int = 2_000_000,
) -> float:
    """Exact (to tolerance) s(u, v) by pair-graph value iteration.

    Runs ``iterations`` rounds of
    ``s_{k+1}(a, b) = c / (|I(a)||I(b)|) Σ s_k(a', b')`` over the pairs
    reachable from (u, v), with s_k(a, a) = 1.  ``max_pairs`` guards the
    frontier explosion the method is famous for (raises MemoryError, the
    same failure mode the original exhibits at scale).
    """
    check_fraction("c", c)
    u, v = int(u), int(v)
    for vertex in (u, v):
        if not 0 <= vertex < graph.n:
            raise VertexError(vertex, graph.n)
    if u == v:
        return 1.0
    T = iterations if iterations is not None else iterations_for_tolerance(c, tol)

    # Level-by-level backward expansion: frontiers[d] holds the pairs
    # whose s_{T-d} value influences s_T(u, v); diagonal pairs stop
    # expanding (their value is 1 at every level).
    frontiers = [{_canon(u, v)}]
    for _ in range(T):
        nxt = set()
        for a, b in frontiers[-1]:
            if a == b:
                continue
            in_a = graph.in_neighbors(a)
            in_b = graph.in_neighbors(b)
            for ap in in_a:
                for bp in in_b:
                    nxt.add(_canon(int(ap), int(bp)))
            if len(nxt) > max_pairs:
                raise MemoryError(
                    f"pair frontier exceeded {max_pairs} pairs — the "
                    "O(d^2)-per-level blowup of the iterative method"
                )
        frontiers.append(nxt)

    # Value iteration from the base case s_0 = I at the deepest level
    # back to (u, v): after processing frontiers[d] the dict holds
    # s_{T-d} values.
    values: Dict[Tuple[int, int], float] = {
        pair: (1.0 if pair[0] == pair[1] else 0.0) for pair in frontiers[T]
    }
    for depth in range(T - 1, -1, -1):
        next_values = values
        values = {}
        for a, b in frontiers[depth]:
            if a == b:
                values[(a, b)] = 1.0
                continue
            in_a = graph.in_neighbors(a)
            in_b = graph.in_neighbors(b)
            if len(in_a) == 0 or len(in_b) == 0:
                values[(a, b)] = 0.0
                continue
            total = 0.0
            for ap in in_a:
                for bp in in_b:
                    total += next_values.get(_canon(int(ap), int(bp)), 0.0)
            values[(a, b)] = c * total / (len(in_a) * len(in_b))
    return values[_canon(u, v)]


def _canon(a: int, b: int) -> Tuple[int, int]:
    """Canonical (sorted) pair key — SimRank is symmetric."""
    return (a, b) if a <= b else (b, a)
