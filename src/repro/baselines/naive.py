"""Jeh–Widom's original all-pairs SimRank iteration [13].

The O(T n^2 d^2) "naive computation" of Table 1: evaluate the defining
recursion

    s_{k+1}(u, v) = c / (|I(u)| |I(v)|) · Σ_{u'∈I(u)} Σ_{v'∈I(v)} s_k(u', v')

for every pair, keeping s(u, u) = 1 and s(u, v) = 0 whenever either
vertex has no in-links.  Implemented literally with Python loops over
neighbor lists — deliberately unoptimised, because its role here is
(a) an independent oracle for the vectorised implementations and
(b) the cost yardstick the paper's Table 1 starts from.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graph.csr import CSRGraph
from repro.core.exact import iterations_for_tolerance
from repro.utils.validation import check_fraction


def naive_simrank(
    graph: CSRGraph,
    c: float = 0.6,
    iterations: Optional[int] = None,
    tol: float = 1e-7,
) -> np.ndarray:
    """All-pairs SimRank by the textbook double-sum recursion.

    Converges monotonically from S_0 = I with rate c^k; identical output
    (up to the shared tolerance) to :func:`repro.core.exact.exact_simrank`.
    """
    check_fraction("c", c)
    k = iterations if iterations is not None else iterations_for_tolerance(c, tol)
    n = graph.n
    in_lists = [graph.in_neighbors(v) for v in range(n)]
    S = np.eye(n)
    for _ in range(k):
        S_next = np.zeros_like(S)
        for u in range(n):
            I_u = in_lists[u]
            if len(I_u) == 0:
                continue
            for v in range(n):
                if v == u:
                    continue
                I_v = in_lists[v]
                if len(I_v) == 0:
                    continue
                total = 0.0
                for u_prime in I_u:
                    row = S[u_prime]
                    for v_prime in I_v:
                        total += row[v_prime]
                S_next[u, v] = c * total / (len(I_u) * len(I_v))
        np.fill_diagonal(S_next, 1.0)
        S = S_next
    return S


def naive_single_pair(
    graph: CSRGraph,
    u: int,
    v: int,
    c: float = 0.6,
    iterations: Optional[int] = None,
    tol: float = 1e-7,
) -> float:
    """Single-pair score via the full naive iteration (oracle use only)."""
    return float(naive_simrank(graph, c=c, iterations=iterations, tol=tol)[u, v])
