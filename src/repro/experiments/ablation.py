"""Ablation study of the paper's design choices (DESIGN.md's checklist).

Four switches make up the query phase's speed: the L1 bound, the L2
bound, adaptive sampling, and the candidate index.  This experiment
turns each off in isolation on one graph and reports, per
configuration:

- scoring work (candidates screened / refined, walks simulated),
- mean query latency,
- answer agreement against the full configuration (top-5 overlap),

quantifying what each ingredient buys — the §6.3 and §7.2 claims in
one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.config import SimRankConfig
from repro.core.engine import SimRankEngine
from repro.core.query import top_k_query
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.utils.rng import SeedLike, derive_seed, ensure_rng
from repro.utils.tables import Table, format_seconds

#: The ablation grid: name -> (use_l1, use_l2, adaptive, use_index).
VARIANTS: Dict[str, tuple] = {
    "full": (True, True, True, True),
    "no-l1": (False, True, True, True),
    "no-l2": (True, False, True, True),
    "no-bounds": (False, False, True, True),
    "no-adaptive": (True, True, False, True),
    "no-index": (True, True, True, False),
}


@dataclass
class AblationRow:
    """Aggregate behaviour of one ablation variant."""

    variant: str
    screened: int
    refined: int
    walks: int
    mean_seconds: float
    overlap_with_full: float


def run_ablation(
    dataset: str = "web-BerkStan",
    tier: str = "tiny",
    config: Optional[SimRankConfig] = None,
    num_queries: int = 12,
    seed: SeedLike = 0,
    graph: Optional[CSRGraph] = None,
    variants: Optional[Sequence[str]] = None,
) -> List[AblationRow]:
    """Run every variant over the same query set and summarise."""
    config = config or SimRankConfig.fast()
    graph = graph if graph is not None else load_dataset(dataset, tier)
    engine = SimRankEngine(graph, config, seed=derive_seed(seed, 5)).preprocess()
    rng = ensure_rng(seed)
    queries = [
        int(u) for u in rng.choice(graph.n, size=min(num_queries, graph.n), replace=False)
    ]
    chosen = list(variants) if variants is not None else list(VARIANTS)
    unknown = set(chosen) - set(VARIANTS)
    if unknown:
        raise ValueError(f"unknown ablation variants: {sorted(unknown)}")

    per_variant: Dict[str, Dict[int, List]] = {}
    rows: List[AblationRow] = []
    for name in chosen:
        use_l1, use_l2, adaptive, use_index = VARIANTS[name]
        screened = refined = walks = 0
        seconds = []
        answers: Dict[int, List] = {}
        for u in queries:
            result = top_k_query(
                graph,
                engine.index if use_index else None,
                u,
                config=config,
                seed=derive_seed(seed, 11, u),  # same stream as the engine
                use_l1=use_l1,
                use_l2=use_l2,
                adaptive=adaptive,
            )
            screened += result.stats.screened
            refined += result.stats.refined
            walks += result.stats.walks_simulated
            seconds.append(result.stats.elapsed_seconds)
            answers[u] = result.vertices()[:5]
        per_variant[name] = answers
        rows.append(
            AblationRow(
                variant=name,
                screened=screened,
                refined=refined,
                walks=walks,
                mean_seconds=float(np.mean(seconds)),
                overlap_with_full=1.0,  # filled below
            )
        )

    reference = per_variant.get("full") or per_variant[chosen[0]]
    for row in rows:
        overlaps = []
        for u in queries:
            ref = reference[u]
            got = per_variant[row.variant][u]
            if ref:
                overlaps.append(len(set(ref) & set(got)) / len(ref))
        row.overlap_with_full = float(np.mean(overlaps)) if overlaps else 1.0
    return rows


def render_ablation(rows: Sequence[AblationRow], dataset: str = "") -> str:
    """One row per variant, work and agreement columns."""
    table = Table(
        ["variant", "screened", "refined", "walks", "mean query", "top-5 vs full"],
        title=f"Ablation of the query-phase ingredients{f' ({dataset})' if dataset else ''}",
    )
    for row in rows:
        table.add_row(
            [
                row.variant,
                row.screened,
                row.refined,
                row.walks,
                format_seconds(row.mean_seconds),
                f"{row.overlap_with_full:.2f}",
            ]
        )
    return "\n".join(
        [
            table.render(),
            "",
            "Reading: 'no-bounds' and 'no-adaptive' do strictly more scoring "
            "work for the same answers; 'no-index' scans the distance ball "
            "instead of H's targeted candidates (§6.3, §7.1-7.2).",
        ]
    )
