"""Figure 1: exact vs approximated SimRank scores.

The paper scatter-plots exact SimRank against the linear-formulation
scores computed with the approximation D ≈ (1-c)I, for highly similar
pairs on ca-GrQc and cit-HepTh, and observes the points lie on a
slope-one line in log–log space — i.e. the approximation rescales
scores without reordering them.

We quantify the same claim: the log–log regression slope (paper: ≈ 1),
the Pearson correlation of log-scores (≈ 1), and — the operationally
relevant statement — mean top-k overlap between exact and approximate
rankings (Remark 1 says the ranking is preserved when D is near a
multiple of I).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.matrix_simrank import exact_vs_approx_pairs, incorrect_linear_simrank
from repro.core.exact import exact_simrank, exact_top_k
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.tables import Table


@dataclass
class CorrelationResult:
    """One Figure 1 panel: correlation of exact and approximate scores."""

    dataset: str
    n: int
    m: int
    num_pairs: int
    loglog_slope: float
    pearson_log: float
    mean_topk_overlap: float
    score_floor: float
    scatter_sample: Optional[np.ndarray] = None


def topk_overlap(
    exact_items: Sequence[Tuple[int, float]],
    approx_items: Sequence[Tuple[int, float]],
) -> float:
    """|exact ∩ approx| / k for two top-k lists."""
    k = max(len(exact_items), 1)
    exact_set = {vertex for vertex, _ in exact_items}
    approx_set = {vertex for vertex, _ in approx_items}
    return len(exact_set & approx_set) / k


def run_correlation(
    dataset: str = "ca-GrQc",
    tier: str = "small",
    c: float = 0.6,
    score_floor: float = 1e-3,
    num_queries: int = 25,
    k: int = 10,
    seed: SeedLike = 0,
    graph: Optional[CSRGraph] = None,
) -> CorrelationResult:
    """Compute one Figure 1 panel on a dataset stand-in.

    ``graph`` overrides the registry lookup (used by tests with fixture
    graphs).
    """
    graph = graph if graph is not None else load_dataset(dataset, tier)
    pairs = exact_vs_approx_pairs(graph, c=c, score_floor=score_floor)
    positive = pairs[(pairs[:, 0] > 0) & (pairs[:, 1] > 0)]
    if len(positive) >= 2:
        log_exact = np.log(positive[:, 0])
        log_approx = np.log(positive[:, 1])
        slope = float(np.polyfit(log_exact, log_approx, deg=1)[0])
        if np.std(log_exact) > 0 and np.std(log_approx) > 0:
            pearson = float(np.corrcoef(log_exact, log_approx)[0, 1])
        else:
            pearson = float("nan")
    else:
        slope = float("nan")
        pearson = float("nan")

    # Ranking preservation: exact vs approximate top-k per query vertex.
    S_exact = exact_simrank(graph, c=c)
    S_approx = incorrect_linear_simrank(graph, c=c)
    rng = ensure_rng(seed)
    queries = rng.choice(graph.n, size=min(num_queries, graph.n), replace=False)
    overlaps: List[float] = []
    for u in queries:
        u = int(u)
        exact_items = exact_top_k(graph, u, k, c=c, S=S_exact)
        approx_items = exact_top_k(graph, u, k, c=c, S=S_approx)
        # Only count queries with a meaningful neighborhood.
        if exact_items and exact_items[0][1] > score_floor:
            overlaps.append(topk_overlap(exact_items, approx_items))
    mean_overlap = float(np.mean(overlaps)) if overlaps else float("nan")

    sample = positive
    if len(sample) > 400:
        stride = len(sample) // 400
        sample = sample[::stride]
    return CorrelationResult(
        dataset=dataset,
        n=graph.n,
        m=graph.m,
        num_pairs=len(pairs),
        loglog_slope=slope,
        pearson_log=pearson,
        mean_topk_overlap=mean_overlap,
        score_floor=score_floor,
        scatter_sample=sample if len(sample) else None,
    )


def render_correlation(
    results: Sequence[CorrelationResult], include_plots: bool = False
) -> str:
    """Figure 1 as a summary table (plus ASCII scatters on request)."""
    table = Table(
        ["Dataset", "n", "m", "pairs", "log-log slope", "Pearson(log)", "top-k overlap"],
        title="Figure 1: correlation of exact and approximated SimRank scores",
    )
    for r in results:
        table.add_row(
            [
                r.dataset,
                r.n,
                r.m,
                r.num_pairs,
                f"{r.loglog_slope:.3f}",
                f"{r.pearson_log:.4f}",
                f"{r.mean_topk_overlap:.3f}",
            ]
        )
    sections = [table.render()]
    if include_plots:
        from repro.utils.asciiplot import scatter

        for r in results:
            if r.scatter_sample is None:
                continue
            sections.append("")
            sections.append(
                scatter(
                    r.scatter_sample[:, 0],
                    r.scatter_sample[:, 1],
                    log=True,
                    title=f"({r.dataset}) exact vs approximated SimRank",
                    xlabel="exact",
                    ylabel="approx (D=(1-c)I)",
                )
            )
    return "\n".join(sections)
