"""Concentration of the Monte-Carlo estimators (Props. 3/5/7, footnote 4).

The paper sets R = 100 for Algorithm 1 and notes (§8, footnote 4) that
this is "much smaller than our theoretical estimations. The reason is
that Hoeffding bound is not tight in this case."  This experiment makes
that statement quantitative:

- measure the empirical error of the Algorithm 1 estimator against the
  deterministic series over a sweep of sample counts R;
- fit the error's decay rate in R (Prop. 3 predicts R^(-1/2));
- compare each R against the ε the Hoeffding-based Corollary 1 would
  require for that accuracy, yielding the bound's looseness factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SimRankConfig
from repro.core.linear import single_pair_series
from repro.core.montecarlo import required_samples, single_pair_simrank
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.utils.rng import SeedLike, derive_seed, ensure_rng
from repro.utils.tables import Table

DEFAULT_SAMPLE_COUNTS = (10, 25, 50, 100, 200, 400)


@dataclass
class ConcentrationPoint:
    """Empirical error of Algorithm 1 at one sample count."""

    R: int
    rmse: float
    p95_abs_error: float
    hoeffding_R_for_p95: int

    @property
    def looseness(self) -> float:
        """How many times more samples Corollary 1 demands than needed."""
        return self.hoeffding_R_for_p95 / self.R


@dataclass
class ConcentrationResult:
    """Sweep over R plus the fitted decay exponent."""

    dataset: str
    n: int
    T: int
    c: float
    points: List[ConcentrationPoint]
    decay_exponent: float
    pairs_evaluated: int


def run_concentration(
    dataset: str = "ca-GrQc",
    tier: str = "tiny",
    sample_counts: Sequence[int] = DEFAULT_SAMPLE_COUNTS,
    num_pairs: int = 20,
    trials_per_pair: int = 10,
    config: Optional[SimRankConfig] = None,
    seed: SeedLike = 0,
    graph: Optional[CSRGraph] = None,
) -> ConcentrationResult:
    """Measure Algorithm 1's error against the deterministic series.

    Pairs are sampled among vertices at undirected distance <= 3 (where
    scores are nonnegligible — the regime the query phase lives in).
    """
    config = config or SimRankConfig(T=9)
    graph = graph if graph is not None else load_dataset(dataset, tier)
    rng = ensure_rng(seed)
    transition = graph.transition_matrix()

    # Sample evaluation pairs with meaningful scores.
    from repro.graph.traversal import distance_ball

    pairs: List[Tuple[int, int, float]] = []
    attempts = 0
    while len(pairs) < num_pairs and attempts < 50 * num_pairs:
        attempts += 1
        u = int(rng.integers(graph.n))
        ball = [v for v in distance_ball(graph, u, 3, direction="both") if v != u]
        if not ball:
            continue
        v = ball[int(rng.integers(len(ball)))]
        truth = single_pair_series(
            graph, u, v, c=config.c, T=config.T, transition=transition
        )
        if truth > 1e-4:
            pairs.append((u, v, truth))

    points: List[ConcentrationPoint] = []
    for R in sorted(set(int(r) for r in sample_counts)):
        errors: List[float] = []
        for i, (u, v, truth) in enumerate(pairs):
            for trial in range(trials_per_pair):
                estimate = single_pair_simrank(
                    graph,
                    u,
                    v,
                    config=config,
                    seed=derive_seed(seed, R, i, trial),
                    R=R,
                )
                errors.append(abs(estimate - truth))
        errors_arr = np.asarray(errors)
        p95 = float(np.percentile(errors_arr, 95))
        hoeffding_R = (
            required_samples(config.c, graph.n, config.T, max(p95, 1e-6), delta=0.05)
            if p95 > 0
            else 0
        )
        points.append(
            ConcentrationPoint(
                R=R,
                rmse=float(np.sqrt((errors_arr**2).mean())),
                p95_abs_error=p95,
                hoeffding_R_for_p95=hoeffding_R,
            )
        )

    rs = np.array([p.R for p in points], dtype=np.float64)
    rmses = np.array([p.rmse for p in points])
    mask = rmses > 0
    decay = (
        float(np.polyfit(np.log(rs[mask]), np.log(rmses[mask]), 1)[0])
        if mask.sum() >= 2
        else float("nan")
    )
    return ConcentrationResult(
        dataset=dataset,
        n=graph.n,
        T=config.T,
        c=config.c,
        points=points,
        decay_exponent=decay,
        pairs_evaluated=len(pairs),
    )


def render_concentration(result: ConcentrationResult) -> str:
    """Error-vs-R table plus the fitted decay rate and looseness factors."""
    table = Table(
        ["R", "RMSE", "95% |error|", "Hoeffding R for that error", "looseness"],
        title=(
            f"Concentration of Algorithm 1 on {result.dataset} "
            f"(n={result.n}, T={result.T}, c={result.c}, "
            f"{result.pairs_evaluated} pairs)"
        ),
    )
    for p in result.points:
        table.add_row(
            [p.R, f"{p.rmse:.5f}", f"{p.p95_abs_error:.5f}", p.hoeffding_R_for_p95,
             f"{p.looseness:.1f}x"]
        )
    return "\n".join(
        [
            table.render(),
            "",
            f"fitted error decay: RMSE ~ R^{result.decay_exponent:.2f} "
            "(Prop. 3 predicts -0.50)",
            "looseness > 1 reproduces footnote 4: Hoeffding demands far more "
            "samples than the estimator actually needs.",
        ]
    )
