"""Ranking quality of SimRank vs one-step similarity measures (§1.1).

The introduction's argument for SimRank: "SimRank and related similarity
measures give high-quality results than other similarity measures, such
as bibliographic coupling or co-citation ... because SimRank exploits
information on multi-step neighborhoods."

This experiment makes the claim testable.  We *plant* ground-truth
similar pairs by cloning vertices: a clone keeps a fraction of its
original's in-neighbors directly (one-step evidence) and replaces the
rest with vertices that merely share citers with the originals
(multi-step evidence only).  As the direct-overlap fraction shrinks,
one-step measures lose the clones while SimRank keeps finding them.

Metric: mean reciprocal rank (MRR) of the clone in each measure's
ranking for its original.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exact import exact_simrank
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraphBuilder
from repro.graph.generators import copying_web_graph
from repro.similarity.neighborhood import (
    co_citation,
    cosine_in_neighbors,
    jaccard_in_neighbors,
)
from repro.similarity.prank import prank_matrix
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.tables import Table


@dataclass
class PlantedCloneGraph:
    """A base graph plus planted (original, clone) ground-truth pairs."""

    graph: CSRGraph
    pairs: List[Tuple[int, int]]
    direct_overlap: float


def plant_clones(
    base_n: int = 300,
    num_clones: int = 20,
    direct_overlap: float = 0.5,
    seed: SeedLike = 0,
) -> PlantedCloneGraph:
    """Clone ``num_clones`` vertices of a copying-model web graph.

    Each clone receives ``direct_overlap`` of its original's in-edges
    verbatim; for the remaining share, the clone is instead cited by a
    *sibling* of the original citer (a vertex sharing an in-neighbor
    with it) — visible to SimRank via one extra step, invisible to
    in-neighborhood intersection.
    """
    if not 0.0 <= direct_overlap <= 1.0:
        raise ValueError(f"direct_overlap must be in [0, 1], got {direct_overlap}")
    rng = ensure_rng(seed)
    base = copying_web_graph(base_n, out_degree=6, copy_probability=0.8, seed=rng)
    builder = DiGraphBuilder(base.n + num_clones)
    builder.add_edges(base.edges())

    eligible = [v for v in range(base.n) if base.in_degree(v) >= 4]
    rng.shuffle(eligible)
    pairs: List[Tuple[int, int]] = []
    for i, original in enumerate(eligible[:num_clones]):
        clone = base.n + i
        citers = base.in_neighbors(original)
        citer_set = {int(w) for w in citers}
        for citer in citers:
            citer = int(citer)
            if rng.random() < direct_overlap:
                builder.add_edge(citer, clone)
            else:
                # Multi-step evidence only: a sibling of the citer (same
                # in-neighborhood lineage) that is NOT itself a citer of
                # the original — so in-neighborhood intersection gains
                # nothing, but the citers' own similarity is one reverse
                # step away for SimRank.
                grand = base.in_neighbors(citer)
                for _ in range(8):
                    if not len(grand):
                        break
                    anchor = int(grand[int(rng.integers(len(grand)))])
                    siblings = base.out_neighbors(anchor)
                    sibling = int(siblings[int(rng.integers(len(siblings)))])
                    if sibling != clone and sibling not in citer_set:
                        builder.add_edge(sibling, clone)
                        break
        # Clones replicate the original's out-links (irrelevant to
        # in-link SimRank; keeps out-link measures like P-Rank fair).
        for target in base.out_neighbors(original):
            builder.add_edge(clone, int(target))
        pairs.append((original, clone))
    return PlantedCloneGraph(builder.to_csr(), pairs, direct_overlap)


def _rank_of(scores: Dict[int, float], target: int) -> Optional[int]:
    ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    for rank, (vertex, _) in enumerate(ordered, start=1):
        if vertex == target:
            return rank
    return None


@dataclass
class MeasureComparison:
    """MRR and hit@20 of the planted clone per measure at one overlap level."""

    direct_overlap: float
    mrr: Dict[str, float]
    hit_at_20: Dict[str, float]
    num_pairs: int


def run_measures(
    overlaps: Sequence[float] = (0.8, 0.4, 0.1),
    base_n: int = 300,
    num_clones: int = 15,
    c: float = 0.6,
    seed: SeedLike = 0,
    include_prank: bool = True,
) -> List[MeasureComparison]:
    """Sweep the direct-overlap fraction and score every measure."""
    results: List[MeasureComparison] = []
    for overlap in overlaps:
        planted = plant_clones(
            base_n=base_n, num_clones=num_clones, direct_overlap=overlap, seed=seed
        )
        graph = planted.graph
        S = exact_simrank(graph, c=c)
        S_prank = prank_matrix(graph, c=c, lam=0.5) if include_prank else None

        reciprocal: Dict[str, List[float]] = {
            "simrank": [],
            "co-citation": [],
            "jaccard": [],
            "cosine": [],
        }
        if include_prank:
            reciprocal["p-rank"] = []
        hits: Dict[str, List[float]] = {name: [] for name in reciprocal}
        for original, clone in planted.pairs:
            candidates: Dict[str, Dict[int, float]] = {
                "co-citation": dict(co_citation(graph, original)),
                "jaccard": jaccard_in_neighbors(graph, original),
                "cosine": cosine_in_neighbors(graph, original),
            }
            simrank_scores = {
                v: float(S[original, v]) for v in range(graph.n)
                if v != original and S[original, v] > 0
            }
            candidates["simrank"] = simrank_scores
            if include_prank and S_prank is not None:
                candidates["p-rank"] = {
                    v: float(S_prank[original, v]) for v in range(graph.n)
                    if v != original and S_prank[original, v] > 0
                }
            for name, scores in candidates.items():
                rank = _rank_of(scores, clone)
                reciprocal[name].append(1.0 / rank if rank else 0.0)
                hits[name].append(1.0 if rank is not None and rank <= 20 else 0.0)

        results.append(
            MeasureComparison(
                direct_overlap=overlap,
                mrr={name: float(np.mean(vals)) for name, vals in reciprocal.items()},
                hit_at_20={name: float(np.mean(vals)) for name, vals in hits.items()},
                num_pairs=len(planted.pairs),
            )
        )
    return results


def render_measures(results: Sequence[MeasureComparison]) -> str:
    """One row per overlap level, one column per measure."""
    if not results:
        return "(no measure comparisons)"
    names = list(results[0].mrr)
    table = Table(
        ["direct overlap"] + [f"{n} MRR/hit@20" for n in names] + ["pairs"],
        title="Planted-clone retrieval per measure (intro's multi-step claim)",
    )
    for r in results:
        table.add_row(
            [f"{r.direct_overlap:.1f}"]
            + [f"{r.mrr[name]:.3f} / {r.hit_at_20[name]:.2f}" for name in names]
            + [r.num_pairs]
        )
    return "\n".join(
        [
            table.render(),
            "",
            "At zero direct overlap the one-step measures (co-citation /"
            " jaccard / cosine) score the clone 0 -- it is invisible to"
            " neighborhood intersection -- while SimRank (and P-Rank, which"
            " also sees the copied out-links) still retrieve it into the"
            " paper's top-20 window via multi-step evidence.",
        ]
    )
