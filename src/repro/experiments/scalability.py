"""Table 4: preprocess time, query time, and index space for all methods.

For every dataset the harness measures, on the synthetic stand-in:

- the proposed method: preprocess time (Algorithm 4 + γ), mean top-20
  query time over ``query_trials`` random vertices, all-pairs (every
  vertex) time on the smallest graphs, and index bytes;
- Fogaras–Rácz (R' = 100): fingerprint build time, mean single-source
  query time, and index bytes;
- Yu et al.: all-pairs time and matrix bytes.

**Feasibility is decided at the paper's real scale**: a baseline gets a
"—" entry exactly when its memory requirement at the *paper's* n and m
exceeds the paper's 256 GB machine (for Yu: 16·n² bytes; for
Fogaras–Rácz the paper reports allocation failures past 70 M edges).
That reproduces Table 4's dash pattern from first principles rather
than hardcoding it: soc-LiveJournal1's fingerprint index comes out at
21.3 GB — the paper measured 21.6 GB — while email-EuAll's Yu matrix
needs 0.5 TB and dies, exactly as printed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


from repro.baselines.fogaras_racz import FingerprintIndex, fingerprint_memory_required
from repro.baselines.yu_allpairs import YuAllPairs, yu_memory_required
from repro.core.config import SimRankConfig
from repro.core.engine import SimRankEngine
from repro.graph.datasets import dataset_spec, load_dataset
from repro.utils.memory import human_bytes
from repro.utils.rng import SeedLike, derive_seed, ensure_rng
from repro.utils.tables import Table, format_seconds
from repro.utils.timer import Timer, timed

#: The paper's machine: 256 GB of RAM.
PAPER_MEMORY_BYTES = 256 * 1024**3

#: The paper's observed Fogaras–Rácz allocation-failure point (§8.3).
FR_EDGE_LIMIT = 70_000_000

DEFAULT_DATASETS = (
    "ca-GrQc",
    "as20000102",
    "wiki-Vote",
    "ca-HepTh",
    "soc-Epinions1",
    "web-Stanford",
    "web-BerkStan",
    "soc-LiveJournal1",
    "it-2004",
    "twitter-2010",
)


@dataclass
class ScalabilityRow:
    """One Table 4 row; ``None`` fields render as the paper's dashes."""

    dataset: str
    n: int
    m: int
    paper_n: int
    paper_m: int
    proposed_preprocess: float
    proposed_query: float
    proposed_query_p95: float
    proposed_allpairs: Optional[float]
    proposed_index_bytes: int
    fr_preprocess: Optional[float]
    fr_query: Optional[float]
    fr_index_bytes: Optional[int]
    yu_allpairs: Optional[float]
    yu_memory_bytes: Optional[int]


def fr_feasible_at_paper_scale(paper_n: int, paper_m: int, fingerprints: int, T: int) -> bool:
    """Whether [9] fits the paper's machine at the dataset's real size."""
    return (
        paper_m <= FR_EDGE_LIMIT
        and fingerprint_memory_required(paper_n, fingerprints, T) <= PAPER_MEMORY_BYTES
    )


def yu_feasible_at_paper_scale(paper_n: int) -> bool:
    """Whether [37] fits the paper's machine at the dataset's real size."""
    return yu_memory_required(paper_n) <= PAPER_MEMORY_BYTES


def run_scalability(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    tier: str = "small",
    config: Optional[SimRankConfig] = None,
    query_trials: int = 10,
    fingerprints: int = 100,
    allpairs_max_n: int = 1000,
    seed: SeedLike = 0,
) -> List[ScalabilityRow]:
    """Reproduce Table 4 across the dataset ladder."""
    config = config or SimRankConfig.fast()
    rows: List[ScalabilityRow] = []
    rng = ensure_rng(seed)
    for dataset in datasets:
        spec = dataset_spec(dataset)
        graph = load_dataset(dataset, tier)
        queries = [int(u) for u in rng.choice(graph.n, size=min(query_trials, graph.n), replace=False)]

        engine = SimRankEngine(graph, config, seed=derive_seed(seed, spec.seed, 1))
        _, preprocess_time = timed(engine.preprocess)
        query_timer = Timer()
        for u in queries:
            with query_timer.measure():
                engine.top_k(u)
        allpairs_time: Optional[float] = None
        if graph.n <= allpairs_max_n:
            _, allpairs_time = timed(lambda: engine.top_k_all())

        fr_preprocess = fr_query = None
        fr_bytes: Optional[int] = None
        if fr_feasible_at_paper_scale(spec.paper_n, spec.paper_m, fingerprints, config.T):
            fr, fr_preprocess = timed(
                lambda: FingerprintIndex(
                    graph,
                    num_fingerprints=fingerprints,
                    T=config.T,
                    c=config.c,
                    seed=derive_seed(seed, spec.seed, 2),
                )
            )
            fr_timer = Timer()
            for u in queries:
                with fr_timer.measure():
                    fr.top_k(u, config.k)
            fr_query = fr_timer.mean
            fr_bytes = fr.nbytes()

        yu_time = None
        yu_bytes: Optional[int] = None
        if yu_feasible_at_paper_scale(spec.paper_n):
            yu = YuAllPairs(graph, c=config.c)
            _, yu_time = timed(yu.compute)
            yu_bytes = yu.nbytes()

        rows.append(
            ScalabilityRow(
                dataset=dataset,
                n=graph.n,
                m=graph.m,
                paper_n=spec.paper_n,
                paper_m=spec.paper_m,
                proposed_preprocess=preprocess_time,
                proposed_query=query_timer.mean,
                proposed_query_p95=query_timer.p95,
                proposed_allpairs=allpairs_time,
                proposed_index_bytes=engine.index_nbytes(),
                fr_preprocess=fr_preprocess,
                fr_query=fr_query,
                fr_index_bytes=fr_bytes,
                yu_allpairs=yu_time,
                yu_memory_bytes=yu_bytes,
            )
        )
    return rows


def render_scalability(rows: Sequence[ScalabilityRow]) -> str:
    """Table 4 in the paper's layout (dashes where memory-infeasible)."""
    table = Table(
        [
            "Dataset",
            "n",
            "m",
            "Prop.Preproc",
            "Prop.Query",
            "Prop.Q.p95",
            "Prop.AllPairs",
            "Prop.Index",
            "FR.Preproc",
            "FR.Query",
            "FR.Index",
            "Yu.AllPairs",
            "Yu.Memory",
        ],
        title="Table 4: preprocess/query time and space (dashes = memory-infeasible at paper scale)",
    )
    for row in rows:
        table.add_row(
            [
                row.dataset,
                row.n,
                row.m,
                format_seconds(row.proposed_preprocess),
                format_seconds(row.proposed_query),
                format_seconds(row.proposed_query_p95),
                format_seconds(row.proposed_allpairs) if row.proposed_allpairs is not None else None,
                human_bytes(row.proposed_index_bytes),
                format_seconds(row.fr_preprocess) if row.fr_preprocess is not None else None,
                format_seconds(row.fr_query) if row.fr_query is not None else None,
                human_bytes(row.fr_index_bytes) if row.fr_index_bytes is not None else None,
                format_seconds(row.yu_allpairs) if row.yu_allpairs is not None else None,
                human_bytes(row.yu_memory_bytes) if row.yu_memory_bytes is not None else None,
            ]
        )
    return table.render()
