"""Table 2: dataset information, paper scale vs stand-in scale.

The paper's Table 2 lists every dataset's n and m.  Our reproduction
adds the synthetic stand-in actually used at each tier, its measured
structural statistics, and the generator family — making the
substitution (DESIGN.md) auditable in one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.graph.datasets import dataset_names, dataset_spec, load_dataset
from repro.graph.stats import degree_summary, reciprocity
from repro.utils.tables import Table


@dataclass
class Table2Row:
    """One dataset: paper scale + stand-in scale + structure."""

    name: str
    family: str
    paper_n: int
    paper_m: int
    standin_n: int
    standin_m: int
    mean_in_degree: float
    reciprocity: float


def run_table2(
    tier: str = "small",
    datasets: Optional[Sequence[str]] = None,
) -> List[Table2Row]:
    """Build the augmented Table 2 for one size tier."""
    names = list(datasets) if datasets is not None else dataset_names()
    rows: List[Table2Row] = []
    for name in names:
        spec = dataset_spec(name)
        graph = load_dataset(name, tier)
        rows.append(
            Table2Row(
                name=name,
                family=spec.family,
                paper_n=spec.paper_n,
                paper_m=spec.paper_m,
                standin_n=graph.n,
                standin_m=graph.m,
                mean_in_degree=degree_summary(graph, "in").mean,
                reciprocity=reciprocity(graph),
            )
        )
    return rows


def render_table2(rows: Sequence[Table2Row], tier: str = "small") -> str:
    """The paper's Table 2 layout, augmented with the stand-in columns."""
    table = Table(
        [
            "Dataset",
            "family",
            "paper n",
            "paper m",
            f"stand-in n ({tier})",
            "stand-in m",
            "mean in-deg",
            "reciprocity",
        ],
        title="Table 2: dataset information (paper scale vs synthetic stand-in)",
    )
    for row in rows:
        table.add_row(
            [
                row.name,
                row.family,
                f"{row.paper_n:,}",
                f"{row.paper_m:,}",
                row.standin_n,
                row.standin_m,
                f"{row.mean_in_degree:.1f}",
                f"{row.reciprocity:.2f}",
            ]
        )
    return table.render()
