"""Command-line entry point: regenerate any paper artefact.

Usage::

    python -m repro.experiments.runner figure1 figure2 table3 table4 table1
    python -m repro.experiments.runner all --tier tiny --quick
    simrank-repro table4            # console-script alias

``--quick`` shrinks query counts and ladders for a fast smoke run; the
defaults match what EXPERIMENTS.md records.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.accuracy import render_accuracy, run_accuracy
from repro.experiments.concentration import (
    render_concentration,
    run_concentration,
)
from repro.experiments.correlation import render_correlation, run_correlation
from repro.experiments.distance import render_distance, run_distance
from repro.experiments.scalability import (
    DEFAULT_DATASETS,
    render_scalability,
    run_scalability,
)
from repro.experiments.scaling import render_scaling, run_scaling
from repro.graph.datasets import dataset_spec

FIGURE1_DATASETS = ("ca-GrQc", "cit-HepTh")
FIGURE2_DATASETS = ("wiki-Vote", "ca-HepTh", "web-BerkStan", "soc-LiveJournal1")


def run_figure1(tier: str, quick: bool, seed: int) -> str:
    """Figure 1 panels on both paper datasets."""
    results = [
        run_correlation(
            dataset,
            tier=tier,
            num_queries=5 if quick else 25,
            seed=seed,
        )
        for dataset in FIGURE1_DATASETS
    ]
    return render_correlation(results, include_plots=True)


def run_figure2(tier: str, quick: bool, seed: int) -> str:
    """Figure 2 panels on the four paper datasets, plus the family gap."""
    curves = [
        run_distance(
            dataset,
            tier=tier,
            num_queries=8 if quick else 40,
            seed=seed,
        )
        for dataset in FIGURE2_DATASETS
    ]
    text = render_distance(curves, include_plots=True)
    from repro.experiments.distance import web_vs_social_gap

    families = {name: dataset_spec(name).family for name in FIGURE2_DATASETS}
    gap = web_vs_social_gap(curves, families, k=10)
    ratio = web_vs_social_gap(curves, families, k=10, normalize=True)
    lines = [text, "", "10th similar vertex per family: distance (and / network average):"]
    for family in sorted(gap):
        lines.append(f"  {family:14s} {gap[family]:.2f}  ({ratio[family]:.2f}x avg)")
    return "\n".join(lines)


def run_table3(tier: str, quick: bool, seed: int) -> str:
    """Table 3 accuracy rows."""
    rows = run_accuracy(
        tier=tier,
        num_queries=5 if quick else 30,
        fingerprints=50 if quick else 100,
        seed=seed,
    )
    return render_accuracy(rows)


def run_table4(tier: str, quick: bool, seed: int) -> str:
    """Table 4 scalability rows."""
    datasets = DEFAULT_DATASETS[:4] if quick else DEFAULT_DATASETS
    rows = run_scalability(
        datasets=datasets,
        tier=tier,
        query_trials=3 if quick else 10,
        seed=seed,
    )
    return render_scalability(rows)


def run_table2_cli(tier: str, quick: bool, seed: int) -> str:
    """Table 2 dataset-information rows (paper scale vs stand-in scale)."""
    from repro.experiments.table2 import render_table2, run_table2

    subset = ("ca-GrQc", "wiki-Vote", "web-BerkStan", "soc-LiveJournal1") if quick else None
    rows = run_table2(tier=tier, datasets=subset)
    return render_table2(rows, tier=tier)


def run_table1(tier: str, quick: bool, seed: int) -> str:
    """Table 1 empirical scaling ladder."""
    sizes = (250, 500, 1000) if quick else (250, 500, 1000, 2000, 4000)
    result = run_scaling(sizes=sizes, query_trials=3 if quick else 8, seed=seed)
    return render_scaling(result)


def run_intro(tier: str, quick: bool, seed: int) -> str:
    """§1.1's multi-step claim: SimRank vs one-step measures on planted clones."""
    from repro.experiments.measures import render_measures, run_measures

    results = run_measures(
        overlaps=(0.8, 0.4, 0.0),
        base_n=150 if quick else 300,
        num_clones=8 if quick else 15,
        seed=seed,
    )
    return render_measures(results)


def run_ablation_cli(tier: str, quick: bool, seed: int) -> str:
    """The DESIGN.md ablation checklist as one table."""
    from repro.experiments.ablation import render_ablation, run_ablation

    dataset = "web-BerkStan"
    rows = run_ablation(
        dataset=dataset,
        tier=tier if tier == "tiny" else "tiny",  # ablations stay small
        num_queries=6 if quick else 15,
        seed=seed,
    )
    return render_ablation(rows, dataset=dataset)


def run_footnote4(tier: str, quick: bool, seed: int) -> str:
    """Concentration sweep reproducing footnote 4 and Prop. 3's rate."""
    result = run_concentration(
        tier=tier,
        num_pairs=6 if quick else 20,
        trials_per_pair=4 if quick else 10,
        seed=seed,
    )
    return render_concentration(result)


EXPERIMENTS: Dict[str, Callable[[str, bool, int], str]] = {
    "figure1": run_figure1,
    "figure2": run_figure2,
    "table1": run_table1,
    "table2": run_table2_cli,
    "table3": run_table3,
    "table4": run_table4,
    "footnote4": run_footnote4,
    "intro": run_intro,
    "ablation": run_ablation_cli,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="simrank-repro",
        description="Regenerate the tables and figures of 'Scalable Similarity "
        "Search for SimRank' (SIGMOD 2014) on synthetic dataset stand-ins.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which artefacts to regenerate",
    )
    parser.add_argument("--tier", default="small", choices=("tiny", "small", "medium"))
    parser.add_argument("--quick", action="store_true", help="smaller query counts")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        default=None,
        help="also write the results as a markdown report to this path",
    )
    args = parser.parse_args(argv)

    names: List[str] = []
    for name in args.experiments:
        if name == "all":
            names.extend(sorted(EXPERIMENTS))
        else:
            names.append(name)

    sections: List[tuple] = []
    for name in dict.fromkeys(names):  # preserve order, drop duplicates
        print(f"\n### {name} (tier={args.tier}, quick={args.quick}, seed={args.seed})\n")
        rendered = EXPERIMENTS[name](args.tier, args.quick, args.seed)
        print(rendered)
        sections.append((name, rendered))

    if args.output:
        write_markdown_report(
            args.output, sections, tier=args.tier, quick=args.quick, seed=args.seed
        )
        print(f"\n(markdown report written to {args.output})")
    return 0


def write_markdown_report(
    path: str,
    sections: Sequence[tuple],
    tier: str,
    quick: bool,
    seed: int,
) -> None:
    """Write rendered experiment sections as a self-contained markdown file.

    Tables are fenced as plain text (they are ASCII-aligned, not
    markdown tables), each under a heading naming the artefact, with the
    exact invocation recorded at the top for reproducibility.
    """
    lines = [
        "# Experiment report",
        "",
        "Generated by:",
        "",
        "```bash",
        "python -m repro.experiments.runner "
        + " ".join(name for name, _ in sections)
        + f" --tier {tier}{' --quick' if quick else ''} --seed {seed}",
        "```",
        "",
    ]
    for name, rendered in sections:
        lines.append(f"## {name}")
        lines.append("")
        lines.append("```text")
        lines.append(rendered)
        lines.append("```")
        lines.append("")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))


if __name__ == "__main__":
    sys.exit(main())
