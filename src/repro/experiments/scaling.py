"""Table 1 (empirical): complexity scaling of every algorithm class.

Table 1 of the paper is analytic; this experiment verifies the claims
that can be verified empirically on a size ladder of copying-model
graphs spanning ~1.5 decades:

- proposed preprocess time grows ~linearly in n (claimed O(n));
- proposed top-k query time is ~independent of m (the headline claim —
  single-pair Monte-Carlo cost O(TR) does not see the graph size);
- proposed index bytes grow ~linearly in n, with a far smaller constant
  than Fogaras–Rácz's O(n R' T);
- the deterministic single-pair evaluation grows ~linearly in m
  (the O(Tm) method of §3.2 that motivates going Monte-Carlo);
- Yu-style all-pairs memory grows ~quadratically in n.

Slopes are least-squares fits in log–log space; the benches assert the
fitted exponents' ordering rather than absolute times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.fogaras_racz import fingerprint_memory_required
from repro.baselines.yu_allpairs import yu_memory_required
from repro.core.config import SimRankConfig
from repro.core.engine import SimRankEngine
from repro.core.linear import single_pair_series
from repro.graph.generators import copying_web_graph
from repro.utils.rng import SeedLike, derive_seed, ensure_rng
from repro.utils.tables import Table, format_seconds
from repro.utils.timer import Timer, timed

DEFAULT_SIZES = (250, 500, 1000, 2000, 4000)


@dataclass
class ScalingPoint:
    """Measurements at one ladder size."""

    n: int
    m: int
    preprocess_seconds: float
    query_seconds: float
    deterministic_pair_seconds: float
    index_bytes: int
    fr_index_bytes: int
    yu_memory_bytes: int


@dataclass
class ScalingResult:
    """The ladder plus fitted log-log exponents."""

    points: List[ScalingPoint]
    exponents: Dict[str, float] = field(default_factory=dict)

    def fit(self) -> "ScalingResult":
        """Fit exponents of each quantity against n (and query time vs m)."""
        ns = np.array([p.n for p in self.points], dtype=np.float64)
        ms = np.array([p.m for p in self.points], dtype=np.float64)

        def slope(xs: np.ndarray, ys: Sequence[float]) -> float:
            ys_arr = np.array(ys, dtype=np.float64)
            mask = ys_arr > 0
            if mask.sum() < 2:
                return float("nan")
            return float(np.polyfit(np.log(xs[mask]), np.log(ys_arr[mask]), 1)[0])

        self.exponents = {
            "preprocess_vs_n": slope(ns, [p.preprocess_seconds for p in self.points]),
            "query_vs_m": slope(ms, [p.query_seconds for p in self.points]),
            "deterministic_pair_vs_m": slope(
                ms, [p.deterministic_pair_seconds for p in self.points]
            ),
            "index_vs_n": slope(ns, [p.index_bytes for p in self.points]),
            "fr_index_vs_n": slope(ns, [p.fr_index_bytes for p in self.points]),
            "yu_memory_vs_n": slope(ns, [p.yu_memory_bytes for p in self.points]),
        }
        return self


def run_scaling(
    sizes: Sequence[int] = DEFAULT_SIZES,
    config: Optional[SimRankConfig] = None,
    query_trials: int = 8,
    fingerprints: int = 100,
    seed: SeedLike = 0,
) -> ScalingResult:
    """Measure the ladder and fit scaling exponents."""
    config = config or SimRankConfig.fast()
    rng = ensure_rng(seed)
    points: List[ScalingPoint] = []
    for n in sizes:
        graph = copying_web_graph(n, seed=derive_seed(seed, n, 1))
        engine = SimRankEngine(graph, config, seed=derive_seed(seed, n, 2))
        _, preprocess_time = timed(engine.preprocess)
        queries = [int(u) for u in rng.choice(graph.n, size=min(query_trials, graph.n), replace=False)]
        timer = Timer()
        for u in queries:
            with timer.measure():
                engine.top_k(u)
        # Median over trials: hub queries with oversized candidate sets
        # would otherwise dominate small trial counts and swamp the fit.
        pair_timer = Timer()
        transition = graph.transition_matrix()
        for u in queries:
            v = (u + 1) % graph.n
            with pair_timer.measure():
                single_pair_series(
                    graph, u, v, c=config.c, T=config.T, transition=transition
                )
        points.append(
            ScalingPoint(
                n=graph.n,
                m=graph.m,
                preprocess_seconds=preprocess_time,
                query_seconds=timer.median,
                deterministic_pair_seconds=pair_timer.mean,
                index_bytes=engine.index_nbytes(),
                fr_index_bytes=fingerprint_memory_required(graph.n, fingerprints, config.T),
                yu_memory_bytes=yu_memory_required(graph.n),
            )
        )
    return ScalingResult(points=points).fit()


def render_scaling(result: ScalingResult) -> str:
    """Ladder table plus the fitted exponent summary."""
    table = Table(
        ["n", "m", "preproc", "query", "det-pair", "index", "FR index", "Yu memory"],
        title="Table 1 (empirical): scaling ladder on copying-model web graphs",
    )
    for p in result.points:
        table.add_row(
            [
                p.n,
                p.m,
                format_seconds(p.preprocess_seconds),
                format_seconds(p.query_seconds),
                format_seconds(p.deterministic_pair_seconds),
                p.index_bytes,
                p.fr_index_bytes,
                p.yu_memory_bytes,
            ]
        )
    lines = [table.render(), "", "Fitted log-log exponents:"]
    for name, value in result.exponents.items():
        lines.append(f"  {name:28s} {value:6.3f}")
    lines.append(
        "Expected shape: preprocess ~n^1, query ~m^0, det-pair ~m^1, "
        "index ~n^1, Yu ~n^2."
    )
    return "\n".join(lines)
