"""Table 3: accuracy of high-score retrieval, proposed vs Fogaras–Rácz.

Protocol (Section 8.2): for a query vertex u, compute the exact
single-source scores, take every vertex with score ≥ θ for
θ ∈ {0.04, 0.05, 0.06, 0.07} as the *optimal* high-score set, and
measure what fraction of it each algorithm retrieves.  The paper runs
100 query vertices per dataset and reports the average; Fogaras–Rácz
uses its published parameter R' = 100.

Because the approximate scores of the proposed method are a rescaling
of the exact ones (Figure 1), its threshold is calibrated by the same
factor: exact s relates to the D=(1-c)I series roughly linearly, so the
engine is asked for vertices whose *approximate* score clears
θ · (median approx/exact ratio estimated on a calibration sample).  The
paper glosses this ("our algorithm can be easily modified so that we
only output high SimRank score vertices"); calibration is the modestly
charitable reading that keeps both methods aiming at the same target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.fogaras_racz import FingerprintIndex
from repro.core.config import SimRankConfig
from repro.core.engine import SimRankEngine
from repro.core.exact import exact_simrank, high_score_vertices
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.utils.rng import SeedLike, derive_seed, ensure_rng
from repro.utils.tables import Table

DEFAULT_DATASETS = ("ca-GrQc", "as20000102", "wiki-Vote", "ca-HepTh")
DEFAULT_THRESHOLDS = (0.04, 0.05, 0.06, 0.07)


@dataclass
class AccuracyRow:
    """One (dataset, threshold) row of Table 3."""

    dataset: str
    threshold: float
    proposed: float
    fogaras_racz: float
    num_queries: int


def _recall(found: Sequence[int], optimal: Sequence[int]) -> float:
    optimal_set = set(optimal)
    if not optimal_set:
        return float("nan")
    return len(optimal_set & set(found)) / len(optimal_set)


def _calibration_ratio(
    engine: SimRankEngine, S_exact: np.ndarray, queries: Sequence[int], floor: float
) -> float:
    """Median (approx series / exact) score ratio on high-score pairs."""
    ratios: List[float] = []
    for u in queries[: min(5, len(queries))]:
        approx = engine.single_source(int(u))
        exact = S_exact[int(u)]
        mask = (exact >= floor) & (np.arange(len(exact)) != int(u)) & (approx > 0)
        ratios.extend((approx[mask] / exact[mask]).tolist())
    return float(np.median(ratios)) if ratios else 1.0


def run_accuracy(
    datasets: Sequence[str] = DEFAULT_DATASETS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    tier: str = "small",
    num_queries: int = 30,
    config: Optional[SimRankConfig] = None,
    fingerprints: int = 100,
    seed: SeedLike = 0,
    graphs: Optional[Dict[str, CSRGraph]] = None,
) -> List[AccuracyRow]:
    """Reproduce Table 3 on the dataset stand-ins.

    ``graphs`` lets tests substitute fixture graphs keyed by name.
    Query vertices are sampled among vertices that actually have a
    nonempty optimal set at the loosest threshold (otherwise recall is
    undefined, and the paper's averages clearly skip such vertices).
    """
    config = config or SimRankConfig.fast()
    rows: List[AccuracyRow] = []
    rng = ensure_rng(seed)
    for dataset in datasets:
        graph = graphs[dataset] if graphs is not None else load_dataset(dataset, tier)
        S = exact_simrank(graph, c=config.c)
        engine = SimRankEngine(graph, config, seed=derive_seed(seed, hash(dataset) % 997, 1))
        engine.preprocess()
        fr = FingerprintIndex(
            graph,
            num_fingerprints=fingerprints,
            T=config.T,
            c=config.c,
            seed=derive_seed(seed, hash(dataset) % 997, 2),
        )

        loosest = min(thresholds)
        eligible = [
            u
            for u in range(graph.n)
            if len(high_score_vertices(S[u], u, loosest)) > 0
        ]
        if not eligible:
            for threshold in thresholds:
                rows.append(AccuracyRow(dataset, threshold, float("nan"), float("nan"), 0))
            continue
        queries = rng.choice(eligible, size=min(num_queries, len(eligible)), replace=False)
        queries = [int(u) for u in queries]
        scale = _calibration_ratio(engine, S, queries, loosest)

        recalls_proposed: Dict[float, List[float]] = {t: [] for t in thresholds}
        recalls_fr: Dict[float, List[float]] = {t: [] for t in thresholds}
        for u in queries:
            # One generous search per query; filter per threshold after.
            result = engine.top_k(u, k=max(100, config.k))
            fr_scores = fr.single_source(u)
            for threshold in thresholds:
                optimal = high_score_vertices(S[u], u, threshold)
                if not optimal:
                    continue
                ours = [
                    v for v, score in result.items if score >= threshold * scale * 0.8
                ]
                theirs = [
                    int(v)
                    for v in np.nonzero(fr_scores >= threshold)[0]
                    if int(v) != u
                ]
                recalls_proposed[threshold].append(_recall(ours, optimal))
                recalls_fr[threshold].append(_recall(theirs, optimal))

        for threshold in thresholds:
            ours = recalls_proposed[threshold]
            theirs = recalls_fr[threshold]
            rows.append(
                AccuracyRow(
                    dataset=dataset,
                    threshold=threshold,
                    proposed=float(np.mean(ours)) if ours else float("nan"),
                    fogaras_racz=float(np.mean(theirs)) if theirs else float("nan"),
                    num_queries=len(ours),
                )
            )
    return rows


def render_accuracy(rows: Sequence[AccuracyRow]) -> str:
    """Table 3 in the paper's layout."""
    table = Table(
        ["Dataset", "Threshold", "Proposed", "Fogaras and Racz", "queries"],
        title="Table 3: accuracy (fraction of optimal high-score vertices found)",
    )
    for row in rows:
        table.add_row(
            [
                row.dataset,
                f"{row.threshold:.2f}",
                f"{row.proposed:.5f}" if not np.isnan(row.proposed) else None,
                f"{row.fogaras_racz:.5f}" if not np.isnan(row.fogaras_racz) else None,
                row.num_queries,
            ]
        )
    return table.render()
