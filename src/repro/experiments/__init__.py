"""Experiment harness regenerating every table and figure of Section 8.

Each module owns one paper artefact and exposes a ``run_*`` function
returning a structured result plus a ``render_*`` function producing the
paper-style text table:

- :mod:`repro.experiments.correlation` — Figure 1;
- :mod:`repro.experiments.distance` — Figure 2;
- :mod:`repro.experiments.accuracy` — Table 3;
- :mod:`repro.experiments.scalability` — Table 4;
- :mod:`repro.experiments.scaling` — Table 1 (empirical complexity);
- :mod:`repro.experiments.concentration` — Props. 3/5/7 + footnote 4;
- :mod:`repro.experiments.runner` — the CLI gluing them together.
"""

from repro.experiments.accuracy import run_accuracy
from repro.experiments.concentration import run_concentration
from repro.experiments.correlation import run_correlation
from repro.experiments.distance import run_distance
from repro.experiments.scalability import run_scalability
from repro.experiments.scaling import run_scaling

__all__ = [
    "run_accuracy",
    "run_concentration",
    "run_correlation",
    "run_distance",
    "run_scalability",
    "run_scaling",
]
