"""Figure 2: distance correlation of the similarity ranking.

For 100 random query vertices the paper plots the average graph
distance of the k-th most similar vertex (exact SimRank, k up to 1000)
against k, with the network's average pairwise distance as a reference
line.  Two claims are read off the figure:

1. top-k similar vertices are *much* closer than the average distance
   (top-10 within distance 2–4), justifying the local search;
2. web graphs concentrate the top-k strictly closer than social
   networks, predicting where the algorithm shines (§8.1 confirms).

``run_distance`` reproduces one panel; :func:`web_vs_social_gap`
quantifies claim 2 across families.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.exact import exact_simrank
from repro.graph.csr import CSRGraph
from repro.graph.datasets import load_dataset
from repro.graph.stats import average_distance
from repro.graph.traversal import UNREACHABLE, bfs_distances
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.tables import Table

#: Default rank positions sampled along the Figure 2 x-axis.
DEFAULT_KS = (1, 2, 3, 5, 10, 20, 50, 100)


@dataclass
class DistanceCurve:
    """One Figure 2 panel: rank position -> mean distance."""

    dataset: str
    n: int
    m: int
    ks: List[int]
    mean_distances: List[float]
    network_average_distance: float
    num_queries: int

    def distance_at(self, k: int) -> float:
        """Mean distance of the k-th most similar vertex."""
        return self.mean_distances[self.ks.index(k)]


def run_distance(
    dataset: str = "wiki-Vote",
    tier: str = "small",
    c: float = 0.6,
    num_queries: int = 40,
    ks: Sequence[int] = DEFAULT_KS,
    seed: SeedLike = 0,
    graph: Optional[CSRGraph] = None,
) -> DistanceCurve:
    """Compute one Figure 2 panel with exact SimRank rankings.

    Distances are undirected hop counts (the symmetric metric the
    paper's average-distance reference implies); query vertices whose
    k-th similar vertex has zero score are skipped at that k, mirroring
    the paper's use of vertices with meaningful neighborhoods.
    """
    graph = graph if graph is not None else load_dataset(dataset, tier)
    ks = sorted(set(int(k) for k in ks))
    if ks[0] < 1:
        raise ValueError(f"ranks must be >= 1, got {ks[0]}")
    S = exact_simrank(graph, c=c)
    rng = ensure_rng(seed)
    queries = rng.choice(graph.n, size=min(num_queries, graph.n), replace=False)

    sums = np.zeros(len(ks))
    counts = np.zeros(len(ks))
    for u in queries:
        u = int(u)
        scores = S[u].copy()
        scores[u] = -np.inf
        ranking = np.argsort(-scores, kind="stable")
        dist = bfs_distances(graph, u, direction="both")
        for i, k in enumerate(ks):
            if k > graph.n - 1:
                continue
            vertex = int(ranking[k - 1])
            if scores[vertex] <= 0.0:
                continue  # ranking beyond the similar neighborhood
            d = int(dist[vertex])
            if d != UNREACHABLE:
                sums[i] += d
                counts[i] += 1

    means = [float(sums[i] / counts[i]) if counts[i] else float("nan") for i in range(len(ks))]
    return DistanceCurve(
        dataset=dataset,
        n=graph.n,
        m=graph.m,
        ks=list(ks),
        mean_distances=means,
        network_average_distance=average_distance(graph, samples=40, seed=ensure_rng(seed)),
        num_queries=len(queries),
    )


def web_vs_social_gap(
    curves: Sequence[DistanceCurve],
    families: Dict[str, str],
    k: int = 10,
    normalize: bool = False,
) -> Dict[str, float]:
    """Mean distance of the k-th similar vertex per graph family.

    With ``normalize=True`` each distance is divided by the network's
    average pairwise distance — the scale-free version of §5's claim
    that web-graph top-k is relatively closer than social-network
    top-k (the absolute gap is a billion-edge-scale effect that
    kilovertex stand-ins compress; see EXPERIMENTS.md).
    """
    per_family: Dict[str, List[float]] = {}
    for curve in curves:
        family = families.get(curve.dataset, "other")
        value = curve.distance_at(k)
        if normalize and curve.network_average_distance > 0:
            value = value / curve.network_average_distance
        if not np.isnan(value):
            per_family.setdefault(family, []).append(value)
    return {family: float(np.mean(vals)) for family, vals in per_family.items()}


def render_distance(
    curves: Sequence[DistanceCurve], include_plots: bool = False
) -> str:
    """Figure 2 panels as a table (plus ASCII line charts on request)."""
    if not curves:
        return "(no distance curves)"
    ks = curves[0].ks
    table = Table(
        ["Dataset", "avg dist"] + [f"k={k}" for k in ks],
        title="Figure 2: mean distance of the k-th most similar vertex",
    )
    for curve in curves:
        table.add_row(
            [curve.dataset, f"{curve.network_average_distance:.2f}"]
            + [
                f"{d:.2f}" if not np.isnan(d) else "-"
                for d in curve.mean_distances
            ]
        )
    sections = [table.render()]
    if include_plots:
        from repro.utils.asciiplot import line_chart

        for curve in curves:
            sections.append("")
            sections.append(
                line_chart(
                    curve.ks,
                    [("distance of k-th similar vertex", curve.mean_distances)],
                    title=f"({curve.dataset}) Figure 2 panel",
                    xlabel="rank k",
                    reference=("network average distance", curve.network_average_distance),
                )
            )
    return "\n".join(sections)
