"""Registry of dataset stand-ins mirroring Table 2 of the paper.

The paper evaluates on SNAP / LAW / MPI-SWS datasets from 14 K to 1.4 B
edges.  This environment has no network access and pure Python cannot
hold billion-edge graphs, so each paper dataset is mapped to a
deterministic synthetic stand-in from the same structural family (see
DESIGN.md "Substitutions").  Stand-ins come in three size tiers:

- ``tiny``   — hundreds of edges, for unit tests;
- ``small``  — the default, thousands of edges, for the experiment
  harness and benchmarks;
- ``medium`` — tens of thousands of edges, for the scaling ladder.

Every graph is produced by a pure function of ``(name, tier)``, so all
experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import DatasetError
from repro.graph.csr import CSRGraph
from repro.graph.generators import (
    forest_fire,
    host_block_web_graph,
    preferential_attachment,
    wiki_vote_like,
)

#: Graph-family labels; the web/social contrast drives Figure 2 and §8.1.
FAMILIES = ("collaboration", "social", "web", "citation", "vote", "autonomous")

#: Size multiplier per tier relative to the ``small`` baseline vertex count.
_TIER_SCALE: Dict[str, float] = {"tiny": 0.15, "small": 1.0, "medium": 4.0}


@dataclass(frozen=True)
class DatasetSpec:
    """One row of the Table 2 stand-in registry."""

    name: str
    family: str
    paper_n: int
    paper_m: int
    small_n: int
    seed: int
    description: str

    def tier_n(self, tier: str) -> int:
        """Vertex count for a size tier."""
        if tier not in _TIER_SCALE:
            raise DatasetError(f"unknown tier {tier!r}; expected one of {sorted(_TIER_SCALE)}")
        return max(20, int(self.small_n * _TIER_SCALE[tier]))


def _build(spec: DatasetSpec, tier: str) -> CSRGraph:
    n = spec.tier_n(tier)
    if spec.family in ("collaboration", "social", "autonomous"):
        return preferential_attachment(n, out_degree=4, seed=spec.seed, bidirected=True)
    if spec.family == "web":
        return host_block_web_graph(n, site_size=40, out_degree=6, seed=spec.seed)
    if spec.family == "citation":
        return forest_fire(n, forward_probability=0.35, backward_probability=0.2, seed=spec.seed)
    if spec.family == "vote":
        return wiki_vote_like(n, seed=spec.seed)
    raise DatasetError(f"unknown family {spec.family!r}")


#: Stand-ins for every dataset named in the paper (Table 2 plus the extra
#: graphs appearing only in Tables 3/4 and Figures 1/2).
_REGISTRY: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("ca-GrQc", "collaboration", 5_242, 14_496, 900, 101,
                    "Arxiv GR-QC collaboration network (undirected)."),
        DatasetSpec("ca-HepTh", "collaboration", 9_877, 25_998, 1_200, 102,
                    "Arxiv HEP-TH collaboration network (undirected)."),
        DatasetSpec("cit-HepTh", "citation", 27_770, 352_807, 1_000, 103,
                    "Arxiv HEP-TH citation network (Figure 1)."),
        DatasetSpec("as20000102", "autonomous", 6_474, 13_895, 800, 104,
                    "Autonomous-systems topology (Table 3)."),
        DatasetSpec("wiki-Vote", "vote", 7_115, 103_689, 700, 105,
                    "Wikipedia adminship votes (dense directed core)."),
        DatasetSpec("email-Enron", "social", 36_692, 183_831, 1_500, 106,
                    "Enron email network."),
        DatasetSpec("email-EuAll", "social", 265_214, 420_045, 2_000, 107,
                    "EU research-institution email network."),
        DatasetSpec("soc-Epinions1", "social", 75_879, 508_837, 1_800, 108,
                    "Epinions who-trusts-whom network."),
        DatasetSpec("soc-Slashdot0811", "social", 77_360, 905_468, 1_800, 109,
                    "Slashdot Zoo, Nov 2008."),
        DatasetSpec("soc-Slashdot0902", "social", 82_168, 948_464, 1_800, 110,
                    "Slashdot Zoo, Feb 2009."),
        DatasetSpec("Cora-direct", "citation", 225_026, 714_266, 1_500, 111,
                    "Cora research-paper citations."),
        DatasetSpec("web-Stanford", "web", 281_903, 2_312_497, 2_000, 112,
                    "Stanford.edu crawl."),
        DatasetSpec("web-NotreDame", "web", 325_728, 1_497_134, 2_000, 113,
                    "Notre Dame crawl."),
        DatasetSpec("web-Google", "web", 875_713, 5_105_049, 2_500, 114,
                    "Google programming-contest web graph."),
        DatasetSpec("web-BerkStan", "web", 685_230, 7_600_505, 2_500, 115,
                    "Berkeley/Stanford crawl (Figure 2)."),
        DatasetSpec("dblp-2011", "collaboration", 933_258, 6_707_236, 2_500, 116,
                    "DBLP co-authorship, 2011 snapshot."),
        DatasetSpec("in-2004", "web", 1_382_908, 17_917_053, 3_000, 117,
                    "Indian web crawl, 2004."),
        DatasetSpec("flickr", "social", 1_715_255, 22_613_981, 3_000, 118,
                    "Flickr follower network."),
        DatasetSpec("soc-LiveJournal1", "social", 4_847_571, 68_993_773, 3_500, 119,
                    "LiveJournal friendship network (Figure 2)."),
        DatasetSpec("indochina-2004", "web", 7_414_866, 194_109_311, 4_000, 120,
                    "Indochina web crawl, 2004."),
        DatasetSpec("it-2004", "web", 41_291_549, 1_150_725_436, 5_000, 121,
                    "Italian web crawl (the paper's billion-edge case)."),
        DatasetSpec("twitter-2010", "social", 41_652_230, 1_468_365_182, 5_000, 122,
                    "Twitter follower network, 2010."),
    ]
}


def dataset_names() -> List[str]:
    """All registered dataset names, in Table 2 order."""
    return list(_REGISTRY)


def dataset_spec(name: str) -> DatasetSpec:
    """Look up the spec for a dataset name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(_REGISTRY)}"
        ) from None


def load_dataset(name: str, tier: str = "small") -> CSRGraph:
    """Build the synthetic stand-in for a paper dataset at a size tier."""
    return _build(dataset_spec(name), tier)


def dataset_table() -> List[Tuple[str, str, int, int]]:
    """(name, family, paper_n, paper_m) rows for rendering Table 2."""
    return [(s.name, s.family, s.paper_n, s.paper_m) for s in _REGISTRY.values()]
