"""Weighted directed graphs and the weighted SimRank primitives.

SimRank++ [3] (cited by the paper as a successful application) extends
SimRank to weighted graphs: the random surfer steps to an in-neighbor
with probability proportional to the edge weight, i.e. the transition
matrix becomes

    P_w[i, j] = w(i, j) / Σ_{i'∈I(j)} w(i', j).

Everything else — the fixed point ``S = (c P_wᵀ S P_w) ∨ I``, the linear
formulation, the Monte-Carlo estimator — carries over verbatim with the
weighted P.  This module provides the weighted storage layer plus the
weighted evaluation primitives; the unweighted machinery in
:mod:`repro.core` is the special case of unit weights (tested as such).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphFormatError, VertexError
from repro.graph.csr import CSRGraph
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fraction, check_positive_int


class WeightedGraph:
    """A :class:`CSRGraph` plus positive edge weights.

    ``in_weights`` is aligned with the underlying graph's
    ``in_indices`` (the weight of the edge from that in-neighbor).
    """

    def __init__(self, graph: CSRGraph, in_weights: np.ndarray) -> None:
        if in_weights.shape != (graph.m,):
            raise GraphFormatError(
                f"expected {graph.m} in-edge weights, got {in_weights.shape}"
            )
        if graph.m and in_weights.min() <= 0:
            raise GraphFormatError("edge weights must be positive")
        self.graph = graph
        self.in_weights = np.ascontiguousarray(in_weights, dtype=np.float64)
        # Per-vertex cumulative weights for O(log deg) weighted sampling.
        self._cumulative = np.zeros(graph.m)
        totals = np.zeros(graph.n)
        for v in range(graph.n):
            start, end = graph.in_indptr[v], graph.in_indptr[v + 1]
            if end > start:
                cumsum = np.cumsum(self.in_weights[start:end])
                self._cumulative[start:end] = cumsum
                totals[v] = cumsum[-1]
        self._totals = totals

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self.graph.n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self.graph.m

    @classmethod
    def from_weighted_edges(
        cls, n: int, edges: Sequence[Tuple[int, int, float]]
    ) -> "WeightedGraph":
        """Build from (source, target, weight) triples.

        Parallel edges are merged by summing their weights.
        """
        plain = sorted({(int(u), int(v)) for u, v, _ in edges})
        graph = CSRGraph.from_edges(n, plain)
        # Align weights to the in-CSR layout: group by target, then source.
        weight_of = {}
        for u, v, w in edges:
            key = (int(u), int(v))
            weight_of[key] = weight_of.get(key, 0.0) + float(w)
        in_weights = np.zeros(graph.m)
        cursor = 0
        for v in range(n):
            for u in graph.in_neighbors(v):
                in_weights[cursor] = weight_of[(int(u), v)]
                cursor += 1
        return cls(graph, in_weights)

    @classmethod
    def uniform(cls, graph: CSRGraph) -> "WeightedGraph":
        """Unit weights — the unweighted special case."""
        return cls(graph, np.ones(graph.m))

    def transition_matrix(self) -> sp.csr_matrix:
        """The weighted ``P_w`` (columns sum to 1 where in-edges exist)."""
        data = np.zeros(self.graph.m)
        for v in range(self.n):
            start, end = self.graph.in_indptr[v], self.graph.in_indptr[v + 1]
            if end > start:
                data[start:end] = self.in_weights[start:end] / self._totals[v]
        matrix = sp.csc_matrix(
            (data, self.graph.in_indices, self.graph.in_indptr),
            shape=(self.n, self.n),
        )
        return matrix.tocsr()

    def sample_in_neighbors(
        self, vertices: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """One weighted reverse step per vertex; DEAD (-1) at dead ends."""
        result = np.full(len(vertices), -1, dtype=np.int64)
        for i, v in enumerate(vertices):
            v = int(v)
            if v < 0:
                continue
            start, end = self.graph.in_indptr[v], self.graph.in_indptr[v + 1]
            if end == start:
                continue
            threshold = rng.random() * self._totals[v]
            offset = int(
                np.searchsorted(self._cumulative[start:end], threshold, side="right")
            )
            offset = min(offset, end - start - 1)
            result[i] = self.graph.in_indices[start + offset]
        return result


def weighted_exact_simrank(
    wgraph: WeightedGraph,
    c: float = 0.6,
    iterations: Optional[int] = None,
    tol: float = 1e-7,
) -> np.ndarray:
    """All-pairs weighted SimRank: fixed point of ``(c P_wᵀ S P_w) ∨ I``."""
    from repro.core.exact import iterations_for_tolerance

    check_fraction("c", c)
    k = iterations if iterations is not None else iterations_for_tolerance(c, tol)
    P = wgraph.transition_matrix()
    S = np.eye(wgraph.n)
    for _ in range(k):
        S = c * (P.T @ (P.T @ S.T).T)
        np.fill_diagonal(S, 1.0)
    return S


def weighted_single_source_series(
    wgraph: WeightedGraph,
    u: int,
    c: float = 0.6,
    T: int = 11,
    diagonal: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Deterministic weighted series ``s^(T)(u, ·)`` (the §3.2 method)."""
    from repro.core.linear import resolve_diagonal

    if not 0 <= int(u) < wgraph.n:
        raise VertexError(int(u), wgraph.n)
    d = resolve_diagonal(wgraph.n, c, diagonal)
    P = wgraph.transition_matrix()
    PT = P.T.tocsr()
    forward: List[np.ndarray] = []
    x = np.zeros(wgraph.n)
    x[int(u)] = 1.0
    for _ in range(T):
        forward.append(x)
        x = P @ x
    z = np.zeros(wgraph.n)
    for t in range(T - 1, -1, -1):
        z = d * forward[t] + c * (PT @ z)
    return z


def weighted_single_pair_mc(
    wgraph: WeightedGraph,
    u: int,
    v: int,
    c: float = 0.6,
    T: int = 11,
    R: int = 100,
    seed: SeedLike = None,
    diagonal: Optional[np.ndarray] = None,
) -> float:
    """Algorithm 1 with weighted reverse walks.

    Identical collision estimator; only the step distribution changes.
    """
    from repro.core.linear import resolve_diagonal
    from repro.core.walks import PositionSketch

    check_fraction("c", c)
    check_positive_int("T", T)
    check_positive_int("R", R)
    u, v = int(u), int(v)
    for vertex in (u, v):
        if not 0 <= vertex < wgraph.n:
            raise VertexError(vertex, wgraph.n)
    if u == v:
        return 1.0
    rng = ensure_rng(seed)
    d = resolve_diagonal(wgraph.n, c, diagonal)

    def bundle(start: int) -> np.ndarray:
        walks = np.empty((T, R), dtype=np.int64)
        walks[0] = start
        for t in range(1, T):
            walks[t] = wgraph.sample_in_neighbors(walks[t - 1], rng)
        return walks

    sketch_u = PositionSketch(bundle(u))
    sketch_v = PositionSketch(bundle(v))
    total, weight = 0.0, 1.0
    for t in range(T):
        total += weight * sketch_u.collision_value(sketch_v, t, d)
        weight *= c
    return total
