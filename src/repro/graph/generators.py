"""Synthetic graph generators.

The paper evaluates on SNAP / LAW web crawls and social networks we
cannot download here, so the experiment harness substitutes synthetic
graphs from the same structural families (see DESIGN.md).  Two families
carry the paper's key structural contrast (Section 5 / 8.1):

- **copying-model web graphs** — strong locality, so top-k SimRank
  vertices sit very close to the query vertex;
- **preferential-attachment social graphs** — hubs and short paths, so
  similar vertices are spread slightly farther.

All generators are deterministic given a seed and return
:class:`~repro.graph.csr.CSRGraph`.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraphBuilder
from repro.utils.rng import SeedLike, ensure_rng

# ----------------------------------------------------------------------
# Fixture graphs (used heavily in tests; Example 1 of the paper)
# ----------------------------------------------------------------------


def star_graph(leaves: int, bidirected: bool = True) -> CSRGraph:
    """A star with one hub (vertex 0) and ``leaves`` spokes.

    With ``bidirected=True`` and ``leaves=3`` this is exactly the claw of
    the paper's Example 1: SimRank with c=0.8 gives s(leaf, leaf)=4/5 and
    diagonal correction D = diag(23/75, 1/5, 1/5, 1/5).
    """
    if leaves < 0:
        raise ConfigError(f"leaves must be nonnegative, got {leaves}")
    builder = DiGraphBuilder(leaves + 1)
    for leaf in range(1, leaves + 1):
        if bidirected:
            builder.add_bidirected_edge(0, leaf)
        else:
            builder.add_edge(0, leaf)
    return builder.to_csr()


def cycle_graph(n: int) -> CSRGraph:
    """Directed cycle 0 -> 1 -> ... -> n-1 -> 0."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    return CSRGraph.from_edges(n, [(i, (i + 1) % n) for i in range(n)])


def path_graph(n: int) -> CSRGraph:
    """Directed path 0 -> 1 -> ... -> n-1."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    return CSRGraph.from_edges(n, [(i, i + 1) for i in range(n - 1)])


def complete_graph(n: int, self_loops: bool = False) -> CSRGraph:
    """Complete directed graph on ``n`` vertices."""
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    edges = [(i, j) for i in range(n) for j in range(n) if self_loops or i != j]
    return CSRGraph.from_edges(n, edges)


def bipartite_double_star(left: int, right: int) -> CSRGraph:
    """Two hubs sharing leaf sets — a worst case for naive candidate pruning."""
    n = 2 + left + right
    builder = DiGraphBuilder(n)
    for leaf in range(2, 2 + left):
        builder.add_bidirected_edge(0, leaf)
    for leaf in range(2 + left, n):
        builder.add_bidirected_edge(1, leaf)
    builder.add_bidirected_edge(0, 2)
    builder.add_bidirected_edge(1, 2)
    return builder.to_csr()


# ----------------------------------------------------------------------
# Random families
# ----------------------------------------------------------------------


def erdos_renyi(n: int, p: float, seed: SeedLike = None) -> CSRGraph:
    """Directed G(n, p) without self loops.

    Sampled via the geometric skipping trick so the cost is proportional
    to the number of edges, not n^2.
    """
    if n < 1:
        raise ConfigError(f"n must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"p must be in [0, 1], got {p}")
    rng = ensure_rng(seed)
    total_slots = n * (n - 1)
    edges: List[Tuple[int, int]] = []
    if p > 0:
        slot = -1
        log1mp = np.log1p(-p) if p < 1.0 else None
        while True:
            if p >= 1.0:
                slot += 1
            else:
                # Skip a geometric number of non-edges.
                gap = int(np.floor(np.log(1.0 - rng.random()) / log1mp))
                slot += gap + 1
            if slot >= total_slots:
                break
            u, offset = divmod(slot, n - 1)
            v = offset if offset < u else offset + 1
            edges.append((u, v))
    return CSRGraph.from_edges(n, edges)


def preferential_attachment(
    n: int,
    out_degree: int = 4,
    seed: SeedLike = None,
    bidirected: bool = True,
) -> CSRGraph:
    """Barabási–Albert-style social network.

    Each arriving vertex links to ``out_degree`` targets chosen
    proportionally to current degree (via the repeated-endpoints trick).
    ``bidirected=True`` mirrors how the paper treats social/collaboration
    networks whose friendship edges are symmetric.
    """
    if n < 2:
        raise ConfigError(f"n must be >= 2, got {n}")
    if out_degree < 1:
        raise ConfigError(f"out_degree must be >= 1, got {out_degree}")
    rng = ensure_rng(seed)
    builder = DiGraphBuilder(n)
    # endpoint pool: every endpoint of every edge, so sampling uniformly
    # from the pool is sampling proportionally to degree.
    pool: List[int] = [0]
    for vertex in range(1, n):
        targets = set()
        k = min(out_degree, vertex)
        while len(targets) < k:
            if rng.random() < 0.15:  # uniform mixing keeps the graph connected
                candidate = int(rng.integers(vertex))
            else:
                candidate = pool[int(rng.integers(len(pool)))]
            if candidate != vertex:
                targets.add(candidate)
        for target in sorted(targets):
            if bidirected:
                builder.add_bidirected_edge(vertex, target)
            else:
                builder.add_edge(vertex, target)
            pool.append(vertex)
            pool.append(target)
    return builder.to_csr()


def copying_web_graph(
    n: int,
    out_degree: int = 6,
    copy_probability: float = 0.75,
    seed: SeedLike = None,
) -> CSRGraph:
    """Kleinberg copying model — the classic web-graph generator.

    Each new page picks a random *prototype* page and copies each of its
    out-links with probability ``copy_probability``, otherwise linking to
    a uniform random page.  Copying creates many pages with near-identical
    in-neighborhoods, i.e. exactly the dense local SimRank structure that
    makes the paper's pruning effective on web graphs.
    """
    if n < 2:
        raise ConfigError(f"n must be >= 2, got {n}")
    if out_degree < 1:
        raise ConfigError(f"out_degree must be >= 1, got {out_degree}")
    if not 0.0 <= copy_probability <= 1.0:
        raise ConfigError(f"copy_probability must be in [0, 1], got {copy_probability}")
    rng = ensure_rng(seed)
    builder = DiGraphBuilder(n)
    out_lists: List[List[int]] = [[] for _ in range(n)]
    # Seed nucleus: a small directed cycle.
    nucleus = min(out_degree + 1, n)
    for i in range(nucleus):
        target = (i + 1) % nucleus
        if target != i:
            builder.add_edge(i, target)
            out_lists[i].append(target)
    for vertex in range(nucleus, n):
        prototype = int(rng.integers(vertex))
        proto_links = out_lists[prototype]
        targets = set()
        for i in range(out_degree):
            if proto_links and rng.random() < copy_probability:
                candidate = proto_links[int(rng.integers(len(proto_links)))]
            else:
                candidate = int(rng.integers(vertex))
            if candidate != vertex:
                targets.add(candidate)
        for target in sorted(targets):
            builder.add_edge(vertex, target)
            out_lists[vertex].append(target)
    return builder.to_csr()


def host_block_web_graph(
    n: int,
    site_size: int = 40,
    intra_probability: float = 0.85,
    out_degree: int = 6,
    copy_probability: float = 0.75,
    seed: SeedLike = None,
) -> CSRGraph:
    """Two-level web-crawl model: pages grouped into sites (hosts).

    Real crawls (the paper's web-BerkStan / it-2004 class) are dominated
    by *host-level block structure*: most links stay within a site, and
    sites connect through a sparse backbone of home pages.  That is what
    produces Figure 2's web-graph signature — top-k similar pages at
    distance <= 2 while the average pairwise distance (which must cross
    the backbone) stays large.  A flat copying model misses this; here
    each page copies links from a same-site prototype with probability
    ``intra_probability`` and links across sites otherwise, and
    consecutive home pages form the inter-site backbone.
    """
    if n < 2:
        raise ConfigError(f"n must be >= 2, got {n}")
    if site_size < 2:
        raise ConfigError(f"site_size must be >= 2, got {site_size}")
    if not 0.0 <= intra_probability <= 1.0:
        raise ConfigError(f"intra_probability must be in [0, 1], got {intra_probability}")
    if out_degree < 1:
        raise ConfigError(f"out_degree must be >= 1, got {out_degree}")
    rng = ensure_rng(seed)
    builder = DiGraphBuilder(n)
    out_lists: List[List[int]] = [[] for _ in range(n)]

    def add_link(page: int, target: int) -> None:
        if target != page and builder.add_edge(page, target):
            out_lists[page].append(target)

    homes = list(range(0, n, site_size))
    for i, home in enumerate(homes):
        # Sparse backbone: a chain of home pages with an occasional
        # long-range shortcut, so inter-site distance grows with n while
        # intra-site distance stays ~2.
        if i > 0:
            add_link(home, homes[i - 1])
            add_link(homes[i - 1], home)
        if i > 1 and i % 5 == 0:
            add_link(home, homes[int(rng.integers(i))])
    for page in range(n):
        site_start = (page // site_size) * site_size
        site_members = range(site_start, min(site_start + site_size, n))
        earlier_in_site = [p for p in site_members if p < page]
        home = site_start
        if page != home:
            add_link(page, home)  # every page links its home page
        for _ in range(out_degree):
            if earlier_in_site and rng.random() < intra_probability:
                prototype = earlier_in_site[int(rng.integers(len(earlier_in_site)))]
                proto_links = [t for t in out_lists[prototype] if t != page]
                if proto_links and rng.random() < copy_probability:
                    add_link(page, proto_links[int(rng.integers(len(proto_links)))])
                else:
                    add_link(page, earlier_in_site[int(rng.integers(len(earlier_in_site)))])
            elif page > 0:
                add_link(page, int(rng.integers(page)))
    return builder.to_csr()


def forest_fire(
    n: int,
    forward_probability: float = 0.35,
    backward_probability: float = 0.2,
    seed: SeedLike = None,
    max_burn: int = 200,
) -> CSRGraph:
    """Leskovec's forest-fire model — citation-network stand-in.

    A new vertex picks an ambassador and "burns" recursively through its
    out- and in-links, citing every burned vertex.  Produces the heavy
    local clustering of citation graphs (the paper's Cora-direct /
    cit-HepTh class).
    """
    if n < 2:
        raise ConfigError(f"n must be >= 2, got {n}")
    rng = ensure_rng(seed)
    builder = DiGraphBuilder(n)
    out_lists: List[List[int]] = [[] for _ in range(n)]
    in_lists: List[List[int]] = [[] for _ in range(n)]

    def geometric(p: float) -> int:
        if p <= 0.0:
            return 0
        return int(rng.geometric(1.0 - p)) - 1

    builder.add_edge(1, 0)
    out_lists[1].append(0)
    in_lists[0].append(1)
    for vertex in range(2, n):
        ambassador = int(rng.integers(vertex))
        burned = {ambassador}
        frontier = [ambassador]
        while frontier and len(burned) < max_burn:
            current = frontier.pop()
            forward = geometric(forward_probability)
            backward = geometric(backward_probability)
            neighbors: List[int] = []
            out_candidates = [w for w in out_lists[current] if w not in burned]
            in_candidates = [w for w in in_lists[current] if w not in burned]
            if out_candidates:
                picks = min(forward, len(out_candidates))
                neighbors.extend(
                    out_candidates[i]
                    for i in rng.choice(len(out_candidates), size=picks, replace=False)
                )
            if in_candidates:
                picks = min(backward, len(in_candidates))
                neighbors.extend(
                    in_candidates[i]
                    for i in rng.choice(len(in_candidates), size=picks, replace=False)
                )
            for neighbor in neighbors:
                if neighbor not in burned:
                    burned.add(neighbor)
                    frontier.append(neighbor)
        for target in sorted(burned):
            builder.add_edge(vertex, target)
            out_lists[vertex].append(target)
            in_lists[target].append(vertex)
    return builder.to_csr()


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    probabilities: Tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed: SeedLike = None,
    bidirected: bool = False,
) -> CSRGraph:
    """R-MAT / Kronecker generator (Graph500-style) for power-law graphs.

    ``n = 2**scale`` vertices and about ``edge_factor * n`` directed
    edges (duplicates and self loops removed).  Used by the scaling
    ladder because a single parameterisation spans 3+ decades of sizes.
    """
    if scale < 1:
        raise ConfigError(f"scale must be >= 1, got {scale}")
    if edge_factor < 1:
        raise ConfigError(f"edge_factor must be >= 1, got {edge_factor}")
    a, b, c_, d = probabilities
    total = a + b + c_ + d
    if not np.isclose(total, 1.0):
        raise ConfigError(f"RMAT probabilities must sum to 1, got {total}")
    rng = ensure_rng(seed)
    n = 1 << scale
    m_target = edge_factor * n
    sources = np.zeros(m_target, dtype=np.int64)
    targets = np.zeros(m_target, dtype=np.int64)
    for level in range(scale):
        draw = rng.random(m_target)
        go_right = (draw >= a + c_).astype(np.int64)  # column half (b or d)
        go_down = (((draw >= a) & (draw < a + c_)) | (draw >= a + b + c_)).astype(np.int64)
        sources |= go_down << level
        targets |= go_right << level
    mask = sources != targets
    edges = set(zip(sources[mask].tolist(), targets[mask].tolist()))
    builder = DiGraphBuilder(n)
    for u, v in sorted(edges):
        builder.add_edge(u, v)
        if bidirected:
            builder.add_edge(v, u)
    return builder.to_csr()


def community_social_graph(
    n: int,
    community_size: int = 15,
    p_intra: float = 0.4,
    inter_links_per_vertex: float = 0.5,
    seed: SeedLike = None,
) -> CSRGraph:
    """Planted-community social network with strong triadic closure.

    Vertices are partitioned into communities of ``community_size``;
    within a community each (bidirected) friendship exists with
    probability ``p_intra``, plus sparse random inter-community ties.
    Friends inside a community share many *low-degree* common
    neighbors, which is the regime where SimRank-based link prediction
    and graph clustering (two applications from the paper's
    introduction) actually work — unlike pure preferential attachment,
    where all shared neighbors are hubs that SimRank's normalization
    discounts.
    """
    if n < 4:
        raise ConfigError(f"n must be >= 4, got {n}")
    if community_size < 2:
        raise ConfigError(f"community_size must be >= 2, got {community_size}")
    if not 0.0 <= p_intra <= 1.0:
        raise ConfigError(f"p_intra must be in [0, 1], got {p_intra}")
    if inter_links_per_vertex < 0:
        raise ConfigError(
            f"inter_links_per_vertex must be >= 0, got {inter_links_per_vertex}"
        )
    rng = ensure_rng(seed)
    builder = DiGraphBuilder(n)
    for start in range(0, n, community_size):
        members = range(start, min(start + community_size, n))
        for i in members:
            for j in members:
                if i < j and rng.random() < p_intra:
                    builder.add_bidirected_edge(i, j)
    total_inter = int(n * inter_links_per_vertex)
    for _ in range(total_inter):
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u != v and u // community_size != v // community_size:
            builder.add_bidirected_edge(u, v)
    return builder.to_csr()


def wiki_vote_like(
    n: int,
    core_fraction: float = 0.15,
    votes_per_user: int = 12,
    fringe_probability: float = 0.35,
    seed: SeedLike = None,
) -> CSRGraph:
    """Dense-core directed graph mimicking wiki-Vote's structure.

    A small "admin candidate" core receives most edges; ordinary users
    vote for core members with preference proportional to popularity.
    A ``fringe_probability`` share of votes instead goes to random
    non-core users — the low-in-degree fringe where wiki-Vote's
    high-SimRank pairs live (two users endorsed by the same few voters).
    Wiki-Vote is the paper's accuracy stress case (Table 3's worst
    rows), because its dense core makes many vertices nearly tied.
    """
    if n < 10:
        raise ConfigError(f"n must be >= 10, got {n}")
    if not 0.0 <= fringe_probability <= 1.0:
        raise ConfigError(
            f"fringe_probability must be in [0, 1], got {fringe_probability}"
        )
    rng = ensure_rng(seed)
    core_size = max(3, int(n * core_fraction))
    builder = DiGraphBuilder(n)
    popularity = np.ones(core_size, dtype=np.float64)
    for voter in range(n):
        k = int(rng.integers(1, votes_per_user + 1))
        fringe_votes = int(rng.binomial(k, fringe_probability))
        core_votes = k - fringe_votes
        weights = popularity / popularity.sum()
        choices = rng.choice(
            core_size, size=min(core_votes, core_size), replace=False, p=weights
        )
        for target in sorted(int(t) for t in choices):
            if target != voter:
                builder.add_edge(voter, target)
                popularity[target] += 1.0
        for _ in range(fringe_votes):
            target = int(rng.integers(core_size, n))
            if target != voter:
                builder.add_edge(voter, target)
    return builder.to_csr()
