"""Immutable CSR (compressed sparse row) directed-graph storage.

This is the storage layer every algorithm in the library runs on.  It
keeps *both* adjacency directions:

- out-edges, for forward traversal and for the ``P^T`` propagation used
  by the deterministic single-source evaluation of the linear series;
- in-edges, for SimRank's reverse random walks (the paper's walks follow
  in-links) and the ``P`` propagation.

Space is ``O(n + m)`` — the paper's optimality remark in Section 2.2
("O(m) is optimal, because we have to read all edges") is about exactly
this representation.

The transition matrix of the transposed graph, ``P`` (Section 3.1), has

    P[i, j] = 1 / indegree(j)   if i is an in-neighbor of j, else 0,

so ``P @ e_v`` is the distribution of a one-step reverse walk from ``v``
and column ``j`` sums to 1 whenever ``j`` has in-links (dead-end columns
are zero; the corresponding walk terminates, see
:mod:`repro.core.walks`).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphFormatError, VertexError


class CSRGraph:
    """Immutable directed graph in dual-CSR form.

    Use :meth:`from_edges` (or :meth:`DiGraphBuilder.to_csr`) to build
    one.  All neighbor accessors return read-only numpy views.
    """

    __slots__ = (
        "n",
        "m",
        "_out_indptr",
        "_out_indices",
        "_in_indptr",
        "_in_indices",
    )

    def __init__(
        self,
        n: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
    ) -> None:
        self.n = int(n)
        self.m = int(len(out_indices))
        if len(in_indices) != self.m:
            raise GraphFormatError(
                f"in/out edge counts differ: {len(in_indices)} vs {self.m}"
            )
        if len(out_indptr) != self.n + 1 or len(in_indptr) != self.n + 1:
            raise GraphFormatError("indptr arrays must have length n + 1")
        self._out_indptr = np.ascontiguousarray(out_indptr, dtype=np.int64)
        self._out_indices = np.ascontiguousarray(out_indices, dtype=np.int64)
        self._in_indptr = np.ascontiguousarray(in_indptr, dtype=np.int64)
        self._in_indices = np.ascontiguousarray(in_indices, dtype=np.int64)
        for arr in (self._out_indptr, self._out_indices, self._in_indptr, self._in_indices):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(cls, n: int, edges: Sequence[Tuple[int, int]]) -> "CSRGraph":
        """Build from a vertex count and an iterable of (source, target) pairs.

        Duplicate edges are kept as given (deduplicate in
        :class:`~repro.graph.digraph.DiGraphBuilder` if needed);
        endpoints must lie in ``[0, n)``.
        """
        if n < 0:
            raise GraphFormatError(f"vertex count must be nonnegative, got {n}")
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise GraphFormatError("edges must be (source, target) pairs")
        if edge_array.size:
            bad = (edge_array < 0) | (edge_array >= n)
            if bad.any():
                offender = int(edge_array[bad.any(axis=1)][0].max())
                raise VertexError(offender, n)
        src = edge_array[:, 0]
        dst = edge_array[:, 1]

        out_indptr, out_indices = _build_csr_side(n, src, dst)
        in_indptr, in_indices = _build_csr_side(n, dst, src)
        return cls(n, out_indptr, out_indices, in_indptr, in_indices)

    @classmethod
    def empty(cls, n: int) -> "CSRGraph":
        """Graph with ``n`` vertices and no edges."""
        return cls.from_edges(n, [])

    def apply_delta(
        self,
        adds: Sequence[Tuple[int, int]],
        removes: Sequence[Tuple[int, int]],
        n: int | None = None,
    ) -> "CSRGraph":
        """A new graph with ``adds`` inserted and ``removes`` deleted.

        This is the delta-merge path of the dynamic engine: instead of
        re-sorting all m edges (``from_edges``), only the adjacency rows
        an edit actually touches are rebuilt — every other row is copied
        as one contiguous slab per gap between touched rows, so the cost
        is O(Δ + touched-row degrees + n) rather than O(m log m).

        ``n`` grows the vertex set (it must be ≥ the current count);
        when omitted it is inferred from the added endpoints.  Removing
        an edge that is not present raises :class:`GraphFormatError` —
        the staged-edit bookkeeping upstream guarantees deltas are
        consistent, so a miss here means corruption, not user error.
        The result is bit-identical to ``from_edges`` over the edited
        edge multiset (rows stay sorted; duplicate edges are preserved,
        and a remove drops exactly one occurrence).
        """
        add_array = _coerce_delta(adds)
        remove_array = _coerce_delta(removes)
        if n is None:
            n_new = self.n
            if add_array.size:
                n_new = max(n_new, int(add_array.max()) + 1)
        else:
            n_new = int(n)
            if n_new < self.n:
                raise GraphFormatError(
                    f"apply_delta cannot shrink the vertex set ({n_new} < {self.n})"
                )
        for edge_array, limit in ((add_array, n_new), (remove_array, self.n)):
            if edge_array.size:
                bad = (edge_array < 0) | (edge_array >= limit)
                if bad.any():
                    offender = int(edge_array[bad.any(axis=1)][0].max())
                    raise VertexError(offender, limit)
        out_indptr, out_indices = _splice_side(
            self.n, n_new, self._out_indptr, self._out_indices,
            add_array[:, 0], add_array[:, 1],
            remove_array[:, 0], remove_array[:, 1],
        )
        in_indptr, in_indices = _splice_side(
            self.n, n_new, self._in_indptr, self._in_indices,
            add_array[:, 1], add_array[:, 0],
            remove_array[:, 1], remove_array[:, 0],
        )
        return CSRGraph(n_new, out_indptr, out_indices, in_indptr, in_indices)

    # ------------------------------------------------------------------
    # Neighbor access
    # ------------------------------------------------------------------

    def _check_vertex(self, vertex: int) -> int:
        vertex = int(vertex)
        if not 0 <= vertex < self.n:
            raise VertexError(vertex, self.n)
        return vertex

    def out_neighbors(self, vertex: int) -> np.ndarray:
        """Vertices ``w`` with an edge vertex -> w (read-only view, sorted)."""
        vertex = self._check_vertex(vertex)
        return self._out_indices[self._out_indptr[vertex] : self._out_indptr[vertex + 1]]

    def in_neighbors(self, vertex: int) -> np.ndarray:
        """Vertices ``w`` with an edge w -> vertex — the paper's ``delta(vertex)``."""
        vertex = self._check_vertex(vertex)
        return self._in_indices[self._in_indptr[vertex] : self._in_indptr[vertex + 1]]

    def out_degree(self, vertex: int) -> int:
        """Number of out-edges of ``vertex``."""
        vertex = self._check_vertex(vertex)
        return int(self._out_indptr[vertex + 1] - self._out_indptr[vertex])

    def in_degree(self, vertex: int) -> int:
        """Number of in-edges of ``vertex`` (``|delta(vertex)|``)."""
        vertex = self._check_vertex(vertex)
        return int(self._in_indptr[vertex + 1] - self._in_indptr[vertex])

    @property
    def out_degrees(self) -> np.ndarray:
        """All out-degrees as an int64 array of length n."""
        return np.diff(self._out_indptr)

    @property
    def in_degrees(self) -> np.ndarray:
        """All in-degrees as an int64 array of length n."""
        return np.diff(self._in_indptr)

    @property
    def in_indptr(self) -> np.ndarray:
        """Read-only CSR pointer array of the in-adjacency (length n + 1)."""
        return self._in_indptr

    @property
    def in_indices(self) -> np.ndarray:
        """Read-only concatenated in-neighbor lists (length m)."""
        return self._in_indices

    @property
    def out_indptr(self) -> np.ndarray:
        """Read-only CSR pointer array of the out-adjacency (length n + 1)."""
        return self._out_indptr

    @property
    def out_indices(self) -> np.ndarray:
        """Read-only concatenated out-neighbor lists (length m)."""
        return self._out_indices

    # ------------------------------------------------------------------
    # Whole-graph views
    # ------------------------------------------------------------------

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate (source, target) pairs in source-major sorted order."""
        for u in range(self.n):
            for v in self.out_neighbors(u):
                yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All edges as an (m, 2) int64 array, source-major sorted order."""
        sources = np.repeat(np.arange(self.n, dtype=np.int64), self.out_degrees)
        return np.column_stack([sources, self._out_indices])

    def reverse(self) -> "CSRGraph":
        """The transposed graph (all edges flipped); O(1), shares arrays."""
        return CSRGraph(
            self.n,
            self._in_indptr,
            self._in_indices,
            self._out_indptr,
            self._out_indices,
        )

    def transition_matrix(self) -> sp.csr_matrix:
        """The paper's matrix ``P`` (Section 3.1) as a scipy CSR matrix.

        ``P[i, j] = 1/indegree(j)`` for every in-neighbor ``i`` of ``j``.
        ``P @ x`` pushes a distribution one reverse-walk step; columns of
        dead-end vertices (indegree 0) are zero, so mass on them vanishes
        — exactly the terminating-walk semantics of the Monte-Carlo code.
        """
        indegs = self.in_degrees.astype(np.float64)
        with np.errstate(divide="ignore"):
            inv = np.where(indegs > 0, 1.0 / np.maximum(indegs, 1), 0.0)
        data = np.repeat(inv, self.in_degrees)
        matrix = sp.csc_matrix(
            (data, self._in_indices, self._in_indptr), shape=(self.n, self.n)
        )
        return matrix.tocsr()

    def nbytes(self) -> int:
        """Payload bytes of the adjacency arrays (the O(m) graph storage)."""
        return int(
            self._out_indptr.nbytes
            + self._out_indices.nbytes
            + self._in_indptr.nbytes
            + self._in_indices.nbytes
        )

    # ------------------------------------------------------------------
    # Zero-copy buffer export / attach
    # ------------------------------------------------------------------

    def to_buffers(self) -> Dict[str, np.ndarray]:
        """The four adjacency arrays as read-only views (no copies).

        Together with :meth:`from_buffers` this is the shared-memory
        transport contract of :mod:`repro.shard`: an exporter lays these
        arrays into one segment and a worker reconstructs the graph over
        attached views without duplicating the O(n + m) payload.
        """
        return {
            "out_indptr": self._out_indptr,
            "out_indices": self._out_indices,
            "in_indptr": self._in_indptr,
            "in_indices": self._in_indices,
        }

    @classmethod
    def from_buffers(cls, n: int, buffers: Dict[str, np.ndarray]) -> "CSRGraph":
        """Rebuild a graph over existing arrays without copying them.

        The arrays must be C-contiguous int64 (what :meth:`to_buffers`
        and the shared-memory attach path produce); the constructor's
        ``ascontiguousarray`` then aliases rather than copies, so the
        result shares memory with ``buffers`` — the zero-copy attach.
        """
        try:
            return cls(
                int(n),
                buffers["out_indptr"],
                buffers["out_indices"],
                buffers["in_indptr"],
                buffers["in_indices"],
            )
        except KeyError as exc:
            raise GraphFormatError(f"graph buffer set is missing array {exc}") from exc

    # ------------------------------------------------------------------
    # Binary serialization
    # ------------------------------------------------------------------

    def save(self, path) -> None:
        """Persist to a compressed .npz (loads ~10x faster than text)."""
        np.savez_compressed(
            path,
            n=np.array([self.n], dtype=np.int64),
            out_indptr=self._out_indptr,
            out_indices=self._out_indices,
            in_indptr=self._in_indptr,
            in_indices=self._in_indices,
        )

    @classmethod
    def load(cls, path) -> "CSRGraph":
        """Load a graph written by :meth:`save`."""
        import zipfile

        try:
            payload = np.load(path)
            return cls(
                int(payload["n"][0]),
                payload["out_indptr"],
                payload["out_indices"],
                payload["in_indptr"],
                payload["in_indices"],
            )
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise GraphFormatError(f"cannot load graph from {path}: {exc}") from exc

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self._out_indptr, other._out_indptr)
            and np.array_equal(self._out_indices, other._out_indices)
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m, self._out_indices.tobytes()[:1024]))

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.m})"


def _build_csr_side(
    n: int, rows: np.ndarray, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Build one CSR direction: counts -> prefix sums -> stable scatter."""
    counts = np.bincount(rows, minlength=n).astype(np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((cols, rows))
    indices = cols[order].astype(np.int64)
    return indptr, indices


def _coerce_delta(pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
    """Normalize an edit list to an (k, 2) int64 array."""
    array = np.asarray(pairs if isinstance(pairs, np.ndarray) else list(pairs),
                       dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise GraphFormatError("delta edges must be (source, target) pairs")
    return array


def _splice_side(
    n_old: int,
    n_new: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    add_rows: np.ndarray,
    add_cols: np.ndarray,
    rem_rows: np.ndarray,
    rem_cols: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Rebuild one CSR direction with only the touched rows re-sorted.

    Untouched rows are copied in contiguous slabs (one numpy slice per
    gap between touched rows); each touched row is re-assembled from its
    old sorted content plus/minus the delta, keeping the per-row sorted
    invariant of ``_build_csr_side``.
    """
    add_map: Dict[int, List[int]] = {}
    for row, col in zip(add_rows.tolist(), add_cols.tolist()):
        add_map.setdefault(row, []).append(col)
    rem_map: Dict[int, List[int]] = {}
    for row, col in zip(rem_rows.tolist(), rem_cols.tolist()):
        rem_map.setdefault(row, []).append(col)
    touched = sorted(set(add_map) | set(rem_map))

    rebuilt: Dict[int, List[int]] = {}
    for row in touched:
        if row < n_old:
            content = indices[indptr[row] : indptr[row + 1]].tolist()
        else:
            content = []
        for col in rem_map.get(row, ()):
            at = bisect.bisect_left(content, col)
            if at >= len(content) or content[at] != col:
                raise GraphFormatError(
                    f"cannot remove absent edge (row {row} has no entry {col})"
                )
            content.pop(at)
        for col in add_map.get(row, ()):
            bisect.insort(content, col)
        rebuilt[row] = content

    counts = np.zeros(n_new, dtype=np.int64)
    counts[:n_old] = np.diff(indptr)
    for row, content in rebuilt.items():
        counts[row] = len(content)
    new_indptr = np.zeros(n_new + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])

    total = int(new_indptr[-1])
    new_indices = np.empty(total, dtype=np.int64)
    write = 0
    next_uncopied = 0
    for row in touched:
        slab_stop = min(row, n_old)
        if next_uncopied < slab_stop:
            lo, hi = int(indptr[next_uncopied]), int(indptr[slab_stop])
            new_indices[write : write + hi - lo] = indices[lo:hi]
            write += hi - lo
        content = rebuilt[row]
        new_indices[write : write + len(content)] = content
        write += len(content)
        next_uncopied = row + 1
    if next_uncopied < n_old:
        lo, hi = int(indptr[next_uncopied]), int(indptr[n_old])
        new_indices[write : write + hi - lo] = indices[lo:hi]
        write += hi - lo
    if write != total:
        raise GraphFormatError(
            f"delta splice wrote {write} entries, expected {total}"
        )
    return new_indptr, new_indices
