"""Edge-list I/O in the SNAP text format used by the paper's datasets.

The format is one ``source<whitespace>target`` pair per line, with ``#``
comment lines (SNAP headers) ignored.  Files ending in ``.gz`` are
transparently (de)compressed.  Vertex ids in a file may be sparse (SNAP
files often are); :func:`read_edge_list` relabels them to the dense range
``0..n-1`` and can return the mapping.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Dict, IO, Iterator, Optional, Tuple, Union

from repro.errors import GraphFormatError
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraphBuilder

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def iter_edge_lines(path: PathLike) -> Iterator[Tuple[int, int]]:
    """Yield raw (source, target) integer pairs from an edge-list file."""
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected two fields, got {stripped!r}")
            try:
                yield int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer vertex id") from exc


def read_edge_list(
    path: PathLike,
    directed: bool = True,
    return_labels: bool = False,
) -> Union[CSRGraph, Tuple[CSRGraph, Dict[int, int]]]:
    """Read an edge list into a :class:`CSRGraph`.

    Parameters
    ----------
    path:
        Text or ``.gz`` file in SNAP format.
    directed:
        If ``False``, every edge is stored in both directions (how the
        paper treats undirected collaboration networks like ca-GrQc).
    return_labels:
        If ``True``, also return the original-id -> dense-id mapping.

    Files whose vertex ids are already dense (every id in ``[0, max]``
    appears consistently) keep their ids unchanged, so writing and
    re-reading a graph round-trips exactly; sparse SNAP ids are
    relabelled in order of first appearance.
    """
    raw = list(iter_edge_lines(path))
    ids = {u for u, _ in raw} | {v for _, v in raw}
    dense = not ids or (min(ids) >= 0 and max(ids) < 2 * len(ids))
    if dense:
        builder = DiGraphBuilder()
    else:
        builder = DiGraphBuilder.with_labels()
    for u, v in raw:
        if directed:
            builder.add_edge(u, v)
        else:
            builder.add_bidirected_edge(u, v)
    graph = builder.to_csr()
    if return_labels:
        labels = builder.labels
        if labels is None:
            labels = {int(i): int(i) for i in sorted(ids)}
        return graph, {int(k): v for k, v in labels.items()}
    return graph


def read_weighted_edge_list(path: PathLike, directed: bool = True):
    """Read a 3-column edge list (``source target weight``) into a
    :class:`~repro.graph.weighted.WeightedGraph`.

    Lines without a weight column default to weight 1.0; undirected mode
    materialises both directions with the same weight; sparse vertex ids
    follow the same densification rule as :func:`read_edge_list`.
    """
    from repro.graph.weighted import WeightedGraph

    triples = []
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected at least two fields, got {stripped!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                weight = float(parts[2]) if len(parts) >= 3 else 1.0
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: malformed line") from exc
            if weight <= 0:
                raise GraphFormatError(
                    f"{path}:{lineno}: weights must be positive, got {weight}"
                )
            triples.append((u, v, weight))
            if not directed:
                triples.append((v, u, weight))

    ids = {u for u, _, _ in triples} | {v for _, v, _ in triples}
    dense = not ids or (min(ids) >= 0 and max(ids) < 2 * len(ids))
    if dense:
        n = (max(ids) + 1) if ids else 0
        return WeightedGraph.from_weighted_edges(n, triples)
    mapping: dict = {}
    relabelled = []
    for u, v, w in triples:
        for vertex in (u, v):
            if vertex not in mapping:
                mapping[vertex] = len(mapping)
        relabelled.append((mapping[u], mapping[v], w))
    return WeightedGraph.from_weighted_edges(len(mapping), relabelled)


def write_edge_list(graph: CSRGraph, path: PathLike, header: Optional[str] = None) -> None:
    """Write a graph as a SNAP-style edge list (round-trips with
    :func:`read_edge_list` when vertex ids are already dense)."""
    with _open_text(path, "w") as handle:
        handle.write(f"# Directed graph: n={graph.n} m={graph.m}\n")
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for u, v in graph.edges():
            handle.write(f"{u}\t{v}\n")
