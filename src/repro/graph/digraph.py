"""Mutable directed-graph builder.

:class:`DiGraphBuilder` is the ingestion-side representation: it accepts
edges one by one (or in bulk), deduplicates parallel edges, drops self
loops on request, and can relabel arbitrary hashable vertex ids to the
dense integer range the CSR layer requires.  Once construction is done,
call :meth:`DiGraphBuilder.to_csr` and use the immutable
:class:`~repro.graph.csr.CSRGraph` everywhere else.

SimRank is defined on in-neighborhoods, so edge direction matters: an
edge ``(u, v)`` means "u links to v", i.e. ``u`` is an *in-neighbor* of
``v`` (``u in delta(v)`` in the paper's notation).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Set, Tuple

from repro.errors import VertexError


class DiGraphBuilder:
    """Accumulates directed edges before freezing into CSR form.

    Parameters
    ----------
    n:
        Optional initial vertex count.  Vertices are the integers
        ``0..n-1``; adding an edge with a larger endpoint grows the range
        automatically (unless the builder was created via
        :meth:`with_labels`, where ids are assigned densely on first use).
    allow_self_loops:
        Whether to keep edges ``(u, u)``.  SimRank's random-surfer model
        is well defined with self loops, and some web-graph datasets
        contain them, so the default is ``True``.
    """

    def __init__(self, n: int = 0, allow_self_loops: bool = True) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be nonnegative, got {n}")
        self._n = n
        self._edges: Set[Tuple[int, int]] = set()
        self._allow_self_loops = allow_self_loops
        self._labels: Optional[Dict[Hashable, int]] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def with_labels(cls, allow_self_loops: bool = True) -> "DiGraphBuilder":
        """Create a builder that maps arbitrary hashable labels to dense ids."""
        builder = cls(0, allow_self_loops=allow_self_loops)
        builder._labels = {}
        return builder

    def _intern(self, label: Hashable) -> int:
        assert self._labels is not None
        vertex = self._labels.get(label)
        if vertex is None:
            vertex = len(self._labels)
            self._labels[label] = vertex
            self._n = max(self._n, vertex + 1)
        return vertex

    def add_vertex(self, vertex: Optional[Hashable] = None) -> int:
        """Ensure a vertex exists; returns its dense integer id.

        With no argument, appends a fresh vertex.  With a label (in label
        mode) or an int id, ensures that vertex is present.
        """
        if vertex is None:
            self._n += 1
            return self._n - 1
        if self._labels is not None:
            return self._intern(vertex)
        vid = int(vertex)  # type: ignore[arg-type]
        if vid < 0:
            raise VertexError(vid, self._n)
        self._n = max(self._n, vid + 1)
        return vid

    def add_edge(self, u: Hashable, v: Hashable) -> bool:
        """Add the directed edge u -> v.  Returns False if it was a duplicate
        or a rejected self loop, True if it was newly inserted."""
        uid = self.add_vertex(u)
        vid = self.add_vertex(v)
        if uid == vid and not self._allow_self_loops:
            return False
        if (uid, vid) in self._edges:
            return False
        self._edges.add((uid, vid))
        return True

    def add_edges(self, edges: Iterable[Tuple[Hashable, Hashable]]) -> int:
        """Bulk :meth:`add_edge`; returns the number of newly inserted edges."""
        return sum(1 for u, v in edges if self.add_edge(u, v))

    def add_bidirected_edge(self, u: Hashable, v: Hashable) -> int:
        """Add u -> v and v -> u (undirected datasets are stored bidirected,
        matching how the paper's SNAP collaboration networks are used)."""
        return int(self.add_edge(u, v)) + int(self.add_edge(v, u))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Current number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Current number of (deduplicated) directed edges."""
        return len(self._edges)

    @property
    def labels(self) -> Optional[Dict[Hashable, int]]:
        """Label -> dense-id mapping, or None for integer-id builders."""
        return dict(self._labels) if self._labels is not None else None

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge u -> v has been added."""
        return (int(u), int(v)) in self._edges

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate edges in sorted order (deterministic)."""
        return iter(sorted(self._edges))

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------

    def to_csr(self) -> "CSRGraph":
        """Freeze into an immutable :class:`~repro.graph.csr.CSRGraph`."""
        from repro.graph.csr import CSRGraph

        return CSRGraph.from_edges(self._n, sorted(self._edges))

    def __repr__(self) -> str:
        return f"DiGraphBuilder(n={self._n}, m={self.m})"
