"""Breadth-first traversal primitives.

The query phase of the paper's algorithm reasons about graph distance
``d(u, v)``:  candidates are examined "in the ascending order of distance
from a given vertex u" (Section 2.2) and both upper bounds are functions
of that distance (Section 6).  Because the paper's random walks follow
*in-links*, the distance that matters for the bounds is the BFS distance
in the reversed edge direction; :func:`bfs_distances` supports all three
conventions explicitly so experiments can compare them.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Literal

import numpy as np

from repro.errors import VertexError
from repro.graph.csr import CSRGraph

Direction = Literal["out", "in", "both"]

UNREACHABLE = -1


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbors of the frontier vertices, concatenated (vectorised)."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # repeat(start - run_offset) + arange reconstructs every slice index.
    run_ends = np.cumsum(counts)
    bases = starts - (run_ends - counts)
    return indices[np.repeat(bases, counts) + np.arange(total, dtype=np.int64)]


def bfs_distances(
    graph: CSRGraph,
    source: int,
    direction: Direction = "in",
    max_distance: int | None = None,
) -> np.ndarray:
    """Hop distances from ``source``; unreachable vertices get ``-1``.

    ``direction="in"`` (the default) follows in-links, matching the
    paper's reverse random walks; ``"out"`` follows out-links; ``"both"``
    treats the graph as undirected.
    ``max_distance`` truncates the search frontier, which is how the
    query phase only explores the local ball around the query vertex.

    Level-synchronous and numpy-vectorised: each BFS level is one
    gather + one dedup, so the per-query distance labelling stays cheap
    even when the ball covers the whole graph.
    """
    if not 0 <= source < graph.n:
        raise VertexError(source, graph.n)
    if direction not in ("in", "out", "both"):
        raise ValueError(f"unknown direction {direction!r}")
    dist = np.full(graph.n, UNREACHABLE, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size and (max_distance is None or level < max_distance):
        gathered = []
        if direction in ("in", "both"):
            gathered.append(_gather_neighbors(graph.in_indptr, graph.in_indices, frontier))
        if direction in ("out", "both"):
            gathered.append(
                _gather_neighbors(graph.out_indptr, graph.out_indices, frontier)
            )
        neighbors = np.concatenate(gathered) if len(gathered) > 1 else gathered[0]
        fresh = neighbors[dist[neighbors] == UNREACHABLE]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        level += 1
        dist[frontier] = level
    return dist


def distance_ball(
    graph: CSRGraph,
    source: int,
    radius: int,
    direction: Direction = "in",
) -> Dict[int, int]:
    """Vertices within ``radius`` hops of ``source`` mapped to their distance.

    This is the "local area" the paper's search explores (Section 2.2,
    ingredient 3): high-SimRank vertices live within distance 2-4.
    """
    if radius < 0:
        raise ValueError(f"radius must be nonnegative, got {radius}")
    dist = bfs_distances(graph, source, direction=direction, max_distance=radius)
    reachable = np.nonzero(dist != UNREACHABLE)[0]
    return {int(v): int(dist[v]) for v in reachable}


def vertices_by_distance(
    graph: CSRGraph,
    source: int,
    radius: int,
    direction: Direction = "in",
) -> List[List[int]]:
    """Vertices grouped by distance: element ``d`` lists vertices at hop ``d``."""
    ball = distance_ball(graph, source, radius, direction=direction)
    shells: List[List[int]] = [[] for _ in range(radius + 1)]
    for vertex, d in sorted(ball.items()):
        shells[d].append(vertex)
    return shells


def weakly_connected_components(graph: CSRGraph) -> List[List[int]]:
    """Weakly connected components, each sorted, largest first."""
    seen = np.zeros(graph.n, dtype=bool)
    components: List[List[int]] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        component = [start]
        seen[start] = True
        queue: deque[int] = deque([start])
        while queue:
            vertex = queue.popleft()
            for nxt in np.concatenate(
                [graph.out_neighbors(vertex), graph.in_neighbors(vertex)]
            ):
                nxt = int(nxt)
                if not seen[nxt]:
                    seen[nxt] = True
                    component.append(nxt)
                    queue.append(nxt)
        components.append(sorted(component))
    components.sort(key=len, reverse=True)
    return components
