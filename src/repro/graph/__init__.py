"""Graph substrate: construction, storage, I/O, generators, traversal, stats."""

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraphBuilder
from repro.graph.generators import (
    complete_graph,
    copying_web_graph,
    cycle_graph,
    erdos_renyi,
    forest_fire,
    path_graph,
    preferential_attachment,
    rmat_graph,
    star_graph,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.traversal import bfs_distances, distance_ball, weakly_connected_components
from repro.graph.stats import average_distance, degree_summary
from repro.graph.weighted import WeightedGraph

__all__ = [
    "CSRGraph",
    "DiGraphBuilder",
    "WeightedGraph",
    "average_distance",
    "bfs_distances",
    "complete_graph",
    "copying_web_graph",
    "cycle_graph",
    "degree_summary",
    "distance_ball",
    "erdos_renyi",
    "forest_fire",
    "path_graph",
    "preferential_attachment",
    "read_edge_list",
    "rmat_graph",
    "star_graph",
    "weakly_connected_components",
    "write_edge_list",
]
