"""Graph statistics used by the experiments.

Two statistics appear directly in the paper:

- the **average distance between two vertices** — the blue reference line
  of Figure 2, estimated here by sampled BFS;
- degree summaries, which explain when the L1 vs L2 bound is tighter
  (Section 6.3: L1 for low-degree query vertices, L2 for high-degree).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.traversal import UNREACHABLE, Direction, bfs_distances
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class DegreeSummary:
    """Degree distribution summary for one direction."""

    mean: float
    median: float
    maximum: int
    zeros: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for report rendering."""
        return {
            "mean": self.mean,
            "median": self.median,
            "maximum": float(self.maximum),
            "zeros": float(self.zeros),
        }


def degree_summary(graph: CSRGraph, direction: Direction = "in") -> DegreeSummary:
    """Summarize the in- or out-degree distribution."""
    if direction == "in":
        degrees = graph.in_degrees
    elif direction == "out":
        degrees = graph.out_degrees
    else:
        degrees = graph.in_degrees + graph.out_degrees
    if len(degrees) == 0:
        return DegreeSummary(0.0, 0.0, 0, 0)
    return DegreeSummary(
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        maximum=int(degrees.max()),
        zeros=int((degrees == 0).sum()),
    )


def average_distance(
    graph: CSRGraph,
    samples: int = 50,
    direction: Direction = "both",
    seed: SeedLike = None,
) -> float:
    """Estimate the mean hop distance between reachable vertex pairs.

    Runs BFS from ``samples`` random sources and averages finite
    distances.  This is the blue line of Figure 2; the paper's point is
    that top-k similar vertices are *much closer* than this average.
    Returns ``nan`` for graphs where no pair is reachable.
    """
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rng = ensure_rng(seed)
    sources = rng.choice(graph.n, size=min(samples, graph.n), replace=False)
    total = 0.0
    count = 0
    for source in sources:
        dist = bfs_distances(graph, int(source), direction=direction)
        finite = dist[(dist != UNREACHABLE) & (dist > 0)]
        if len(finite):
            total += float(finite.sum())
            count += int(len(finite))
    return total / count if count else float("nan")


def effective_diameter(
    graph: CSRGraph,
    samples: int = 50,
    percentile: float = 90.0,
    direction: Direction = "both",
    seed: SeedLike = None,
) -> float:
    """Sampled 90th-percentile pairwise distance (SNAP's effective diameter)."""
    rng = ensure_rng(seed)
    sources = rng.choice(graph.n, size=min(samples, graph.n), replace=False)
    collected = []
    for source in sources:
        dist = bfs_distances(graph, int(source), direction=direction)
        finite = dist[(dist != UNREACHABLE) & (dist > 0)]
        collected.append(finite)
    if not collected:
        return float("nan")
    merged = np.concatenate(collected)
    if merged.size == 0:
        return float("nan")
    return float(np.percentile(merged, percentile))


def reciprocity(graph: CSRGraph) -> float:
    """Fraction of edges whose reverse edge also exists.

    Distinguishes the bidirected social stand-ins (reciprocity 1.0) from
    the directed web crawls (low reciprocity).
    """
    if graph.m == 0:
        return float("nan")
    edges = set(map(tuple, graph.edge_array().tolist()))
    mutual = sum(1 for u, v in edges if (v, u) in edges)
    return mutual / len(edges)
