"""Process-local metrics primitives: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns every metric of one process, keyed by
``(subsystem, name)`` — e.g. ``("query", "candidates_total")`` — so the
exporters can render Prometheus-style flat names
(``query_candidates_total``) without a separate naming layer.

Design constraints, in order:

1. **Cheap when hot.**  The query pipeline records a handful of counter
   increments per query; each increment is one lock-free-in-practice
   ``+=`` under a per-metric :class:`threading.Lock` (uncontended locks
   are ~100ns in CPython — negligible against a multi-ms query).
2. **Mergeable.**  ``top_k_all_parallel`` workers each fill a private
   registry and ship a picklable :meth:`MetricsRegistry.snapshot` back;
   the parent folds them in with :meth:`MetricsRegistry.merge`.  Merge
   semantics: counters and histograms **add**, gauges take the **max**
   of values that were actually set (deterministic regardless of chunk
   arrival order).
3. **Exact.**  Histograms keep per-bucket (non-cumulative) counts plus
   the running sum/count, so merged histograms are bit-identical to a
   sequential run's.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type, TypeVar

from repro.utils.sync import make_lock

__all__ = [
    "Snapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: A picklable registry dump, as produced by :meth:`MetricsRegistry.snapshot`.
Snapshot = Dict[str, Any]

M = TypeVar("M")

#: Latency buckets (seconds): sub-ms to tens of seconds, Prometheus style.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Generic size/count buckets (postings lengths, candidate counts, ...).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 10000,
)


class Counter:
    """Monotonically increasing count (events, walks, cache hits)."""

    __slots__ = ("subsystem", "name", "value", "_lock")

    def __init__(self, subsystem: str, name: str) -> None:
        self.subsystem = subsystem
        self.name = name
        self.value: float = 0.0
        self._lock = make_lock("Counter._lock")

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Point-in-time value (index bytes, last preprocess seconds)."""

    __slots__ = ("subsystem", "name", "value", "updated", "_lock")

    def __init__(self, subsystem: str, name: str) -> None:
        self.subsystem = subsystem
        self.name = name
        self.value: float = 0.0
        self.updated: bool = False
        self._lock = make_lock("Gauge._lock")

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.updated = True

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            self.updated = True

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram with exact sum/count.

    ``buckets`` are the *upper bounds* of the finite buckets, strictly
    increasing; an implicit +Inf bucket catches the overflow.  Internal
    counts are per-bucket (non-cumulative); the Prometheus exporter
    cumulates at render time.
    """

    __slots__ = ("subsystem", "name", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        subsystem: str,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.subsystem = subsystem
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum: float = 0.0
        self.count: int = 0
        self._lock = make_lock("Histogram._lock")

    def observe(self, value: float) -> None:
        """Record one observation (bucket upper bounds are inclusive)."""
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (last entry == count)."""
        out: List[int] = []
        running = 0
        for c in self.counts:
            running += c
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation; the last finite bound for +Inf)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, c in zip(self.buckets, self.counts):
            running += c
            if running >= target:
                return bound
        return self.buckets[-1]


class MetricsRegistry:
    """All metrics of one process, keyed by ``(subsystem, name)``.

    Get-or-create accessors are idempotent: asking twice for the same
    counter returns the same object; asking for an existing name with a
    different *kind* raises, catching subsystem/name collisions early.
    """

    def __init__(self) -> None:
        self._lock = make_lock("MetricsRegistry._lock")
        self._metrics: Dict[Tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    # Get-or-create accessors
    # ------------------------------------------------------------------

    def _get_or_create(self, kind: Type[M], subsystem: str, name: str, *args: object) -> M:
        key = (str(subsystem), str(name))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {subsystem}.{name} already registered as "
                        f"{type(existing).__name__}, not {kind.__name__}"
                    )
                return existing
            metric = kind(subsystem, name, *args)
            self._metrics[key] = metric
            return metric

    def counter(self, subsystem: str, name: str) -> Counter:
        return self._get_or_create(Counter, subsystem, name)

    def gauge(self, subsystem: str, name: str) -> Gauge:
        return self._get_or_create(Gauge, subsystem, name)

    def histogram(
        self,
        subsystem: str,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, subsystem, name, buckets)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable:
        return iter(sorted(self._metrics.items()))

    def get(self, subsystem: str, name: str) -> Optional[object]:
        """The metric at ``(subsystem, name)``, or None."""
        return self._metrics.get((subsystem, name))

    def counter_value(self, subsystem: str, name: str) -> float:
        """Value of a counter, 0.0 if it was never created."""
        metric = self._metrics.get((subsystem, name))
        return metric.value if isinstance(metric, Counter) else 0.0

    # ------------------------------------------------------------------
    # Snapshot / merge (the ProcessPoolExecutor hand-off)
    # ------------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """Picklable plain-dict state, stable across processes.

        Shape::

            {"counters":   {"query.candidates_total": 12.0, ...},
             "gauges":     {"index.bytes": 8192.0, ...},
             "histograms": {"query.latency_seconds":
                            {"buckets": [...], "counts": [...],
                             "sum": 0.12, "count": 9}, ...}}
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        with self._lock:
            items = list(self._metrics.items())
        for (subsystem, name), metric in sorted(items):
            key = f"{subsystem}.{name}"
            if isinstance(metric, Counter):
                counters[key] = metric.value
            elif isinstance(metric, Gauge):
                if metric.updated:
                    gauges[key] = metric.value
            elif isinstance(metric, Histogram):
                histograms[key] = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, other: "MetricsRegistry | dict") -> None:
        """Fold another registry (or a :meth:`snapshot`) into this one.

        Counters and histograms add; gauges take the max of set values.
        Histograms merged into an existing metric must share its bucket
        bounds — silently mixing resolutions would corrupt quantiles.
        """
        snap = other.snapshot() if isinstance(other, MetricsRegistry) else other
        for key, value in snap.get("counters", {}).items():
            subsystem, name = _split_key(key)
            self.counter(subsystem, name).inc(value)
        for key, value in snap.get("gauges", {}).items():
            subsystem, name = _split_key(key)
            gauge = self.gauge(subsystem, name)
            if not gauge.updated or value > gauge.value:
                gauge.set(value)
        for key, payload in snap.get("histograms", {}).items():
            subsystem, name = _split_key(key)
            hist = self.histogram(subsystem, name, payload["buckets"])
            if list(hist.buckets) != [float(b) for b in payload["buckets"]]:
                raise ValueError(
                    f"histogram {key} bucket mismatch: "
                    f"{hist.buckets} vs {payload['buckets']}"
                )
            with hist._lock:
                for i, c in enumerate(payload["counts"]):
                    hist.counts[i] += int(c)
                hist.sum += float(payload["sum"])
                hist.count += int(payload["count"])

    def reset(self) -> None:
        """Drop every metric (tests and per-bench sidecars)."""
        with self._lock:
            self._metrics.clear()


def _split_key(key: str) -> Tuple[str, str]:
    subsystem, _, name = key.partition(".")
    if not name:
        raise ValueError(f"metric key {key!r} is not 'subsystem.name'")
    return subsystem, name
