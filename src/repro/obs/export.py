"""Exporters: registry snapshots as JSON lines or Prometheus text.

Both formats work from the picklable plain-dict
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`, so anything that
can ship a snapshot (a worker process, a benchmark sidecar, the CLI)
can export without holding live metric objects.

The JSONL form is loss-less (``parse_jsonl`` round-trips it exactly);
the Prometheus form follows the text exposition format 0.0.4 —
``# TYPE`` comments, cumulative ``_bucket`` lines with an ``le`` label,
``_sum``/``_count`` companions — and is what ``--metrics prom`` prints.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.metrics import Snapshot

__all__ = [
    "to_jsonl",
    "parse_jsonl",
    "write_jsonl",
    "to_prometheus",
    "parse_prometheus",
    "summary_rows",
    "with_derived",
]


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------

def to_jsonl(snapshot: Snapshot) -> str:
    """One JSON object per metric, sorted by key — diff-friendly."""
    lines: List[str] = []
    for key, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(json.dumps(
            {"kind": "counter", "key": key, "value": value}, sort_keys=True
        ))
    for key, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(json.dumps(
            {"kind": "gauge", "key": key, "value": value}, sort_keys=True
        ))
    for key, payload in sorted(snapshot.get("histograms", {}).items()):
        lines.append(json.dumps(
            {
                "kind": "histogram",
                "key": key,
                "buckets": payload["buckets"],
                "counts": payload["counts"],
                "sum": payload["sum"],
                "count": payload["count"],
            },
            sort_keys=True,
        ))
    return "\n".join(lines) + ("\n" if lines else "")


def parse_jsonl(text: str) -> Snapshot:
    """Inverse of :func:`to_jsonl`; returns a snapshot dict."""
    snapshot: Snapshot = {"counters": {}, "gauges": {}, "histograms": {}}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"metrics JSONL line {lineno} is not JSON: {exc}") from exc
        kind = record.get("kind")
        key = record.get("key")
        if not isinstance(key, str):
            raise ValueError(f"metrics JSONL line {lineno} is missing 'key'")
        if kind == "counter":
            snapshot["counters"][key] = float(record["value"])
        elif kind == "gauge":
            snapshot["gauges"][key] = float(record["value"])
        elif kind == "histogram":
            snapshot["histograms"][key] = {
                "buckets": [float(b) for b in record["buckets"]],
                "counts": [int(c) for c in record["counts"]],
                "sum": float(record["sum"]),
                "count": int(record["count"]),
            }
        else:
            raise ValueError(f"metrics JSONL line {lineno} has unknown kind {kind!r}")
    return snapshot


def write_jsonl(snapshot: Snapshot, path: Union[str, Path]) -> Path:
    """Write the JSONL export to ``path`` (benchmark sidecars)."""
    path = Path(path)
    path.write_text(to_jsonl(snapshot))
    return path


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _prom_name(key: str) -> str:
    """``subsystem.name`` -> ``subsystem_name`` with invalid chars mapped."""
    flat = key.replace(".", "_")
    return "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in flat)


def _prom_number(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(snapshot: Snapshot) -> str:
    """Prometheus text-format 0.0.4 rendering of a snapshot."""
    lines: List[str] = []
    for key, value in sorted(snapshot.get("counters", {}).items()):
        name = _prom_name(key)
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_prom_number(value)}")
    for key, value in sorted(snapshot.get("gauges", {}).items()):
        name = _prom_name(key)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_prom_number(value)}")
    for key, payload in sorted(snapshot.get("histograms", {}).items()):
        name = _prom_name(key)
        lines.append(f"# TYPE {name} histogram")
        running = 0
        for bound, count in zip(payload["buckets"], payload["counts"]):
            running += int(count)
            lines.append(f'{name}_bucket{{le="{_prom_number(float(bound))}"}} {running}')
        running += int(payload["counts"][-1])
        lines.append(f'{name}_bucket{{le="+Inf"}} {running}')
        lines.append(f"{name}_sum {_prom_number(payload['sum'])}")
        lines.append(f"{name}_count {int(payload['count'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Samples of a Prometheus text page as ``{sample_name: value}``.

    Labelled samples (histogram ``_bucket`` lines) key as
    ``name{le="..."}`` verbatim.  Used by the round-trip tests and handy
    for asserting on CLI output; not a full openmetrics parser.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"prometheus line {lineno} is malformed: {line!r}")
        samples[name] = float(value)
    return samples


# ---------------------------------------------------------------------------
# Derived gauges
# ---------------------------------------------------------------------------

def with_derived(snapshot: Snapshot) -> Snapshot:
    """A copy of ``snapshot`` with derived gauges computed at export time.

    - ``query.prune_rate`` = ``query.pruned_by_bound_total /
      query.candidates_total`` — the signal the ``repro.control`` tuner
      reads; **0.0 before the first candidate is enumerated** (never a
      NaN or a division by zero on an empty window).
    - ``shard.epoch_lag`` = ``shard.epoch - shard.workers_min_epoch`` —
      how far the slowest shard worker trails the published epoch; 0 in
      steady state and **0.0 when no shard backend is attached** (a
      single-process server exports the gauge too, so dashboards and
      the controller read one name regardless of ``--shards``).

    Surfaced in the ``--metrics summary`` table and on the serve
    ``/metrics`` endpoint so consumers never recompute ratios from raw
    values.  Both gauges are emitted unconditionally — a scrape of a
    just-booted server (no queries yet, no shard pool) sees explicit
    zeros instead of missing series.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    new_gauges: Dict[str, float] = {}
    candidates = counters.get("query.candidates_total", 0.0)
    new_gauges["query.prune_rate"] = (
        counters.get("query.pruned_by_bound_total", 0.0) / candidates
        if candidates > 0
        else 0.0
    )
    if "shard.epoch" in gauges and "shard.workers_min_epoch" in gauges:
        new_gauges["shard.epoch_lag"] = (
            gauges["shard.epoch"] - gauges["shard.workers_min_epoch"]
        )
    else:
        new_gauges["shard.epoch_lag"] = 0.0
    derived = dict(snapshot)
    derived["gauges"] = dict(gauges)
    derived["gauges"].update(new_gauges)
    return derived


# ---------------------------------------------------------------------------
# Human summary (the ``--metrics summary`` CLI mode)
# ---------------------------------------------------------------------------

def summary_rows(snapshot: Snapshot) -> List[List[str]]:
    """``[metric, kind, value]`` rows for a text table (derived gauges included)."""
    snapshot = with_derived(snapshot)
    rows: List[List[str]] = []
    for key, value in sorted(snapshot.get("counters", {}).items()):
        rows.append([_prom_name(key), "counter", _prom_number(value)])
    for key, value in sorted(snapshot.get("gauges", {}).items()):
        rows.append([_prom_name(key), "gauge", f"{value:.6g}"])
    for key, payload in sorted(snapshot.get("histograms", {}).items()):
        count = int(payload["count"])
        mean = payload["sum"] / count if count else 0.0
        rows.append(
            [_prom_name(key), "histogram", f"count={count} mean={mean:.6g}"]
        )
    return rows
