"""The metric catalogue: every metric the pipeline emits, in one place.

Instrumentation code registers metrics through these constants rather
than string literals, so the exported names, the docs table
(``docs/observability.md``), and the tests can never drift apart.

Prometheus flat name = ``{subsystem}_{name}`` (e.g. the
``("query", "candidates_total")`` counter exports as
``query_candidates_total``).
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# (subsystem, name) keys
# ---------------------------------------------------------------------------

# Query phase (Algorithm 5) — one bump per top-k query.
QUERY_CANDIDATES = ("query", "candidates_total")
QUERY_PRUNED_BY_BOUND = ("query", "pruned_by_bound_total")
QUERY_SKIPPED_BY_TERMINATION = ("query", "skipped_by_termination_total")
QUERY_SCREENED = ("query", "screened_total")
QUERY_REFINED = ("query", "refined_total")
QUERY_SAMPLES = ("query", "samples_total")
QUERY_FALLBACK = ("query", "fallback_total")
QUERY_COUNT = ("query", "queries_total")
QUERY_LATENCY = ("query", "latency_seconds")  # histogram

# Preprocess phase (Algorithms 3 + 4).
PREPROCESS_SECONDS = ("preprocess", "seconds")  # gauge: last build wall clock
PREPROCESS_SIGNATURE_SECONDS = ("preprocess", "signature_seconds")
PREPROCESS_GAMMA_SECONDS = ("preprocess", "gamma_seconds")
PREPROCESS_INVERT_SECONDS = ("preprocess", "invert_seconds")
PREPROCESS_BUILDS = ("preprocess", "builds_total")
PREPROCESS_VERTICES = ("preprocess", "vertices_total")

# Index artefact shape.
INDEX_BYTES = ("index", "bytes")  # gauge
INDEX_POSTINGS_LENGTH = ("index", "postings_length")  # histogram
INDEX_SIGNATURE_MEAN = ("index", "signature_mean")  # gauge

# Monte-Carlo walk engine (Algorithm 1 bundles).
WALKS_BUNDLES = ("walks", "bundles_total")
WALKS_WALKS = ("walks", "walks_total")
WALKS_STEPS = ("walks", "steps_total")
WALKS_MEETINGS = ("walks", "meeting_events_total")
WALKS_BATCH_SIZE = ("walks", "batch_size")  # histogram

# Serving-layer result cache.
CACHE_HITS = ("cache", "hits_total")
CACHE_MISSES = ("cache", "misses_total")
CACHE_EVICTIONS = ("cache", "evictions_total")
CACHE_INVALIDATIONS = ("cache", "invalidations_total")

# Parallel all-vertices sweep.
PARALLEL_CHUNKS = ("parallel", "chunks_total")

# Derived ratio (computed at export time, not recorded by hooks): the
# fraction of enumerated candidates the L1/L2/trivial bounds discarded —
# the signal a future adaptive P/Q tuner reads.
QUERY_PRUNE_RATE = ("query", "prune_rate")

# Query server (repro.serve).
SERVE_REQUESTS = ("serve", "requests_total")
SERVE_SHED = ("serve", "requests_shed_total")
SERVE_DEADLINE_EXPIRED = ("serve", "deadline_expired_total")
SERVE_ERRORS = ("serve", "errors_total")
SERVE_QUEUE_DEPTH = ("serve", "queue_depth")  # gauge
SERVE_BATCH_SIZE = ("serve", "batch_size")  # histogram
SERVE_SWAPS = ("serve", "engine_swaps_total")
SERVE_REQUEST_LATENCY = ("serve", "request_latency_seconds")  # histogram

# Sharded backend (repro.shard).
SHARD_QUERIES = ("shard", "queries_total")
SHARD_FANOUT = ("shard", "fanout")  # histogram: workers scattered per query
SHARD_SCATTER_LATENCY = ("shard", "scatter_latency_seconds")  # histogram
SHARD_EPOCH = ("shard", "epoch")  # gauge: pool's current published epoch
SHARD_WORKERS_MIN_EPOCH = ("shard", "workers_min_epoch")  # gauge
SHARD_WORKER_CRASHES = ("shard", "worker_crashes_total")
SHARD_DELTA_PUBLISHES = ("shard", "delta_publishes_total")

# Derived at export time: how far the slowest worker trails the
# published epoch (0 in steady state; >0 flags a stuck/restarting shard).
SHARD_EPOCH_LAG = ("shard", "epoch_lag")

# Self-tuning controller (repro.control) — every decision the control
# loop makes is itself observable, so the loop can be audited with the
# same tooling it consumes.
CONTROL_TICKS = ("control", "ticks_total")
CONTROL_STEPS = ("control", "steps_total")
CONTROL_ROLLBACKS = ("control", "rollbacks_total")
CONTROL_GUARD_TRIPS = ("control", "guard_trips_total")
CONTROL_GUARD_P99 = ("control", "guard_p99_trips_total")
CONTROL_GUARD_SHED = ("control", "guard_shed_trips_total")
CONTROL_GUARD_ERRORS = ("control", "guard_error_trips_total")
CONTROL_KNOB_MAX_BATCH = ("control", "knob_max_batch")  # gauge
CONTROL_KNOB_BATCH_WINDOW = ("control", "knob_batch_window_seconds")  # gauge
CONTROL_KNOB_R_PAIR = ("control", "knob_r_pair")  # gauge
CONTROL_KNOB_SCREEN_SLACK = ("control", "knob_screen_slack")  # gauge
CONTROL_KNOB_FLUSH_MAX_STALENESS = ("control", "knob_flush_max_staleness_seconds")  # gauge
CONTROL_KNOB_FLUSH_MAX_PENDING = ("control", "knob_flush_max_pending")  # gauge

#: knob name -> its current-value gauge key (drives the per-tick export).
CONTROL_KNOB_GAUGES: Dict[str, Tuple[str, str]] = {
    "max_batch": CONTROL_KNOB_MAX_BATCH,
    "batch_window": CONTROL_KNOB_BATCH_WINDOW,
    "r_pair": CONTROL_KNOB_R_PAIR,
    "screen_slack": CONTROL_KNOB_SCREEN_SLACK,
    "flush_max_staleness": CONTROL_KNOB_FLUSH_MAX_STALENESS,
    "flush_max_pending": CONTROL_KNOB_FLUSH_MAX_PENDING,
}

# Dynamic write path (repro.core.dynamic) — the numbers a production
# update stream is judged on: how much each flush repaired, how deep the
# staged backlog runs, and how stale the served snapshot is.
FLUSH_EDITS_APPLIED = ("flush", "edits_applied_total")
FLUSH_VERTICES_AFFECTED = ("flush", "vertices_affected_total")
FLUSH_REPAIR_SECONDS = ("flush", "repair_seconds")  # histogram
FLUSH_QUEUE_DEPTH = ("flush", "queue_depth")  # gauge
DYNAMIC_SNAPSHOT_AGE = ("dynamic", "snapshot_age_seconds")  # gauge

#: key -> (metric kind, one-line meaning); drives docs and sanity tests.
CATALOG: Dict[Tuple[str, str], Tuple[str, str]] = {
    QUERY_CANDIDATES: ("counter", "candidates enumerated across all queries"),
    QUERY_PRUNED_BY_BOUND: ("counter", "candidates dropped by the L1/L2/trivial bounds"),
    QUERY_SKIPPED_BY_TERMINATION: ("counter", "candidates skipped by theta-termination"),
    QUERY_SCREENED: ("counter", "candidates given the cheap R=r_screen estimate"),
    QUERY_REFINED: ("counter", "candidates re-estimated with the full R=r_pair bundle"),
    QUERY_SAMPLES: ("counter", "Monte-Carlo walks simulated by queries"),
    QUERY_FALLBACK: ("counter", "queries that unioned in the distance-ball fallback"),
    QUERY_COUNT: ("counter", "top-k queries answered"),
    QUERY_LATENCY: ("histogram", "end-to-end top-k query latency (seconds)"),
    PREPROCESS_SECONDS: ("gauge", "wall clock of the last full preprocess"),
    PREPROCESS_SIGNATURE_SECONDS: ("gauge", "Algorithm 4 signature-walk phase of the last build"),
    PREPROCESS_GAMMA_SECONDS: ("gauge", "Algorithm 3 gamma-table phase of the last build"),
    PREPROCESS_INVERT_SECONDS: ("gauge", "inverted-list construction phase of the last build"),
    PREPROCESS_BUILDS: ("counter", "full index builds performed"),
    PREPROCESS_VERTICES: ("counter", "vertices whose signatures were (re)built"),
    INDEX_BYTES: ("gauge", "packed payload bytes of the candidate index"),
    INDEX_POSTINGS_LENGTH: ("histogram", "inverted-list posting lengths"),
    INDEX_SIGNATURE_MEAN: ("gauge", "mean signature-set size"),
    WALKS_BUNDLES: ("counter", "reverse-walk bundles simulated"),
    WALKS_WALKS: ("counter", "individual reverse walks simulated"),
    WALKS_STEPS: ("counter", "walk steps requested (walks x T)"),
    WALKS_MEETINGS: ("counter", "series terms with a nonzero collision value"),
    WALKS_BATCH_SIZE: ("histogram", "candidates scored per fused estimate_batch call"),
    CACHE_HITS: ("counter", "result-cache hits"),
    CACHE_MISSES: ("counter", "result-cache misses"),
    CACHE_EVICTIONS: ("counter", "LRU evictions"),
    CACHE_INVALIDATIONS: ("counter", "full-cache invalidations"),
    PARALLEL_CHUNKS: ("counter", "worker chunk registries merged back"),
    QUERY_PRUNE_RATE: ("gauge", "pruned_by_bound / candidates, derived at export time"),
    SERVE_REQUESTS: ("counter", "requests the server finished answering"),
    SERVE_SHED: ("counter", "requests rejected because the admission queue was full"),
    SERVE_DEADLINE_EXPIRED: ("counter", "requests whose deadline passed while queued"),
    SERVE_ERRORS: ("counter", "requests that failed with a server-side error"),
    SERVE_QUEUE_DEPTH: ("gauge", "current admission-queue occupancy"),
    SERVE_BATCH_SIZE: ("histogram", "top-k requests grouped per micro-batch"),
    SERVE_SWAPS: ("counter", "zero-downtime engine snapshot swaps published"),
    SERVE_REQUEST_LATENCY: ("histogram", "queue + execution latency per served request"),
    SHARD_QUERIES: ("counter", "scatter-gather top-k queries answered by the shard pool"),
    SHARD_FANOUT: ("histogram", "shard workers scattered to per query"),
    SHARD_SCATTER_LATENCY: ("histogram", "scatter + gather + replay-merge latency per query"),
    SHARD_EPOCH: ("gauge", "current published shard-pool epoch"),
    SHARD_WORKERS_MIN_EPOCH: ("gauge", "lowest epoch any live shard worker is serving"),
    SHARD_WORKER_CRASHES: ("counter", "shard worker processes that died unexpectedly"),
    SHARD_DELTA_PUBLISHES: ("counter", "epoch rolls shipped as row-level deltas instead of full re-exports"),
    SHARD_EPOCH_LAG: ("gauge", "epoch - workers_min_epoch, derived at export time"),
    CONTROL_TICKS: ("counter", "controller evaluation ticks completed"),
    CONTROL_STEPS: ("counter", "bounded knob steps the controller applied"),
    CONTROL_ROLLBACKS: ("counter", "steps reverted after a guarded SLO regressed"),
    CONTROL_GUARD_TRIPS: ("counter", "windows in which any SLO guard was breached"),
    CONTROL_GUARD_P99: ("counter", "guard trips attributed to the p99 latency SLO"),
    CONTROL_GUARD_SHED: ("counter", "guard trips attributed to the shed-rate bound"),
    CONTROL_GUARD_ERRORS: ("counter", "guard trips attributed to the error-rate bound"),
    CONTROL_KNOB_MAX_BATCH: ("gauge", "live value of the micro-batcher max_batch knob"),
    CONTROL_KNOB_BATCH_WINDOW: ("gauge", "live value of the batch linger window (seconds)"),
    CONTROL_KNOB_R_PAIR: ("gauge", "live value of the refine walk budget R knob"),
    CONTROL_KNOB_SCREEN_SLACK: ("gauge", "live value of the screen/refine split knob"),
    CONTROL_KNOB_FLUSH_MAX_STALENESS: ("gauge", "live value of the flush staleness budget (seconds)"),
    CONTROL_KNOB_FLUSH_MAX_PENDING: ("gauge", "live value of the flush backpressure limit"),
    FLUSH_EDITS_APPLIED: ("counter", "edge edits applied by dynamic flushes"),
    FLUSH_VERTICES_AFFECTED: ("counter", "index rows recomputed by dynamic flushes"),
    FLUSH_REPAIR_SECONDS: ("histogram", "signature + gamma repair time per flush"),
    FLUSH_QUEUE_DEPTH: ("gauge", "staged + inflight edits awaiting a flush"),
    DYNAMIC_SNAPSHOT_AGE: ("gauge", "seconds since the dynamic engine last published"),
}


def flat_name(key: Tuple[str, str]) -> str:
    """Prometheus name for a catalogue key: ``{subsystem}_{name}``."""
    return f"{key[0]}_{key[1]}"
