"""Instrumentation glue between the pipeline and the metrics registry.

The whole subsystem hangs off one module-level switch, ``OBS.enabled``
(default ``False``).  Every hook site in the hot paths is written as::

    from repro.obs import instrument as obs
    ...
    if obs.OBS.enabled:
        obs.record_query(stats)

so the *disabled* cost is a single attribute check — no function call,
no allocation — which is what keeps the tier-1 benchmark numbers
untouched when metrics are off.

**Scoped registries** (:func:`collecting`) exist for the parallel
sweep: each worker chunk collects into a private registry, ships its
snapshot back, and the parent merges — giving one registry whose
counter totals are identical to a sequential run's, regardless of how
vertices were chunked.  The same mechanism isolates per-benchmark
sidecars without disturbing a surrounding session registry.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, ContextManager, Iterator, List, Optional

from repro.obs import catalog
from repro.obs.metrics import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    Snapshot,
)
from repro.obs.tracing import Tracer

if TYPE_CHECKING:  # core imports this module; keep the reverse edge type-only
    from repro.core.index import CandidateIndex
    from repro.core.query import QueryStats

__all__ = [
    "Observability",
    "OBS",
    "enable",
    "disable",
    "enabled",
    "reset",
    "get_registry",
    "snapshot",
    "trace",
    "collecting",
    "session",
    "record_query",
    "record_preprocess",
    "record_index",
    "record_walk_bundle",
    "record_walk_batch",
    "record_cache",
    "merge_worker_snapshot",
    "push_registry",
    "pop_registry",
    "record_serve_request",
    "record_serve_shed",
    "record_serve_deadline_expired",
    "record_serve_error",
    "record_serve_batch",
    "record_serve_swap",
    "set_serve_queue_depth",
    "record_shard_query",
    "record_shard_crash",
    "record_shard_delta_publish",
    "set_shard_epochs",
    "record_control_tick",
    "record_control_step",
    "record_control_rollback",
    "record_control_guard_trip",
    "set_control_knob",
    "record_flush",
    "set_flush_queue_depth",
    "set_dynamic_snapshot_age",
]


class Observability:
    """Process-wide observability state (one instance: :data:`OBS`)."""

    __slots__ = ("enabled", "registry", "tracer", "_stack")

    def __init__(self) -> None:
        self.enabled: bool = False
        self.registry = MetricsRegistry()
        self.tracer = Tracer()
        self._stack: List[MetricsRegistry] = []


OBS = Observability()


# ---------------------------------------------------------------------------
# Switches
# ---------------------------------------------------------------------------

def enable(tracing: bool = False) -> None:
    """Turn metric collection on (and optionally span tracing)."""
    OBS.enabled = True
    if tracing:
        OBS.tracer.enable()


def disable() -> None:
    """Turn collection off; recorded metrics are kept until :func:`reset`."""
    OBS.enabled = False
    OBS.tracer.disable()


def enabled() -> bool:
    return OBS.enabled


def reset() -> None:
    """Drop all recorded metrics and spans (the on/off switches are kept)."""
    OBS.registry.reset()
    OBS.tracer.clear()


def get_registry() -> MetricsRegistry:
    """The registry currently collecting (scoped one if inside :func:`collecting`)."""
    return OBS._stack[-1] if OBS._stack else OBS.registry


def snapshot() -> Snapshot:
    """Snapshot of the active registry."""
    return get_registry().snapshot()


def trace(name: str, **attrs: object) -> ContextManager[None]:
    """Span context manager on the global tracer (no-op when disabled)."""
    return OBS.tracer.trace(name, **attrs)


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Route all recording to a private registry inside the block.

    Used by parallel worker chunks and benchmark sidecars.  Nestable;
    the previous target is restored on exit.
    """
    target = registry if registry is not None else MetricsRegistry()
    OBS._stack.append(target)
    try:
        yield target
    finally:
        OBS._stack.pop()


@contextmanager
def session(tracing: bool = False) -> Iterator[MetricsRegistry]:
    """Enable collection for the block, restoring the prior switch after.

    Convenience for tests and notebooks::

        with obs.session() as registry:
            engine.top_k(5)
        print(registry.counter_value("query", "queries_total"))
    """
    was_enabled = OBS.enabled
    enable(tracing=tracing)
    try:
        with collecting() as registry:
            yield registry
    finally:
        if not was_enabled:
            disable()


# ---------------------------------------------------------------------------
# Recording hooks (callers gate on OBS.enabled first)
# ---------------------------------------------------------------------------

def record_query(stats: "QueryStats") -> None:
    """Fold one query's :class:`~repro.core.query.QueryStats` into the registry."""
    registry = get_registry()
    registry.counter(*catalog.QUERY_COUNT).inc()
    registry.counter(*catalog.QUERY_CANDIDATES).inc(stats.candidates)
    registry.counter(*catalog.QUERY_PRUNED_BY_BOUND).inc(stats.pruned_by_bound)
    registry.counter(*catalog.QUERY_SKIPPED_BY_TERMINATION).inc(
        stats.skipped_by_termination
    )
    registry.counter(*catalog.QUERY_SCREENED).inc(stats.screened)
    registry.counter(*catalog.QUERY_REFINED).inc(stats.refined)
    registry.counter(*catalog.QUERY_SAMPLES).inc(stats.walks_simulated)
    if stats.fallback_used:
        registry.counter(*catalog.QUERY_FALLBACK).inc()
    registry.histogram(*catalog.QUERY_LATENCY).observe(stats.elapsed_seconds)


def record_preprocess(
    vertices: int,
    seconds: float,
    signature_seconds: float = 0.0,
    gamma_seconds: float = 0.0,
    invert_seconds: float = 0.0,
) -> None:
    """One full index build (Algorithm 4 + Algorithm 3 + inverted lists)."""
    registry = get_registry()
    registry.counter(*catalog.PREPROCESS_BUILDS).inc()
    registry.counter(*catalog.PREPROCESS_VERTICES).inc(vertices)
    registry.gauge(*catalog.PREPROCESS_SECONDS).set(seconds)
    registry.gauge(*catalog.PREPROCESS_SIGNATURE_SECONDS).set(signature_seconds)
    registry.gauge(*catalog.PREPROCESS_GAMMA_SECONDS).set(gamma_seconds)
    registry.gauge(*catalog.PREPROCESS_INVERT_SECONDS).set(invert_seconds)


def record_index(index: "CandidateIndex") -> None:
    """Shape of a freshly built/loaded :class:`~repro.core.index.CandidateIndex`."""
    registry = get_registry()
    registry.gauge(*catalog.INDEX_BYTES).set(index.nbytes())
    registry.gauge(*catalog.INDEX_SIGNATURE_MEAN).set(
        index.signature_size_stats()["mean"]
    )
    postings = registry.histogram(
        *catalog.INDEX_POSTINGS_LENGTH, buckets=DEFAULT_SIZE_BUCKETS
    )
    for posting in index.inverted.values():
        postings.observe(len(posting))


def record_walk_bundle(walks: int, steps: int, meetings: int = 0) -> None:
    """One Monte-Carlo bundle: ``walks`` reverse walks of ``steps`` total steps."""
    registry = get_registry()
    registry.counter(*catalog.WALKS_BUNDLES).inc()
    registry.counter(*catalog.WALKS_WALKS).inc(walks)
    registry.counter(*catalog.WALKS_STEPS).inc(steps)
    if meetings:
        registry.counter(*catalog.WALKS_MEETINGS).inc(meetings)


def record_walk_batch(size: int) -> None:
    """One fused ``estimate_batch`` call scoring ``size`` candidates."""
    get_registry().histogram(
        *catalog.WALKS_BATCH_SIZE, buckets=DEFAULT_SIZE_BUCKETS
    ).observe(size)


def record_cache(event: str, amount: int = 1) -> None:
    """Cache event: ``"hit"``, ``"miss"``, ``"eviction"``, or ``"invalidation"``."""
    key = {
        "hit": catalog.CACHE_HITS,
        "miss": catalog.CACHE_MISSES,
        "eviction": catalog.CACHE_EVICTIONS,
        "invalidation": catalog.CACHE_INVALIDATIONS,
    }[event]
    get_registry().counter(*key).inc(amount)


def merge_worker_snapshot(worker_snapshot: Snapshot) -> None:
    """Fold a worker chunk's registry snapshot into the active registry."""
    registry = get_registry()
    registry.counter(*catalog.PARALLEL_CHUNKS).inc()
    registry.merge(worker_snapshot)


# ---------------------------------------------------------------------------
# Serving-layer hooks (repro.serve)
# ---------------------------------------------------------------------------

def push_registry(registry: MetricsRegistry) -> None:
    """Route all subsequent recording into ``registry`` until popped.

    The long-lived counterpart of :func:`collecting` for components that
    cannot hold a ``with`` block open across their lifetime — the query
    server installs its own registry on startup so ``/metrics`` exposes
    exactly what happened while it was serving.
    """
    OBS._stack.append(registry)


def pop_registry(registry: MetricsRegistry) -> None:
    """Undo :func:`push_registry`; tolerates an already-removed registry."""
    try:
        OBS._stack.remove(registry)
    except ValueError:
        pass


def record_serve_request(seconds: float) -> None:
    """One request answered (queue wait + execution), any outcome but shed."""
    registry = get_registry()
    registry.counter(*catalog.SERVE_REQUESTS).inc()
    registry.histogram(*catalog.SERVE_REQUEST_LATENCY).observe(seconds)


def record_serve_shed(amount: int = 1) -> None:
    """Requests rejected by the bounded admission queue."""
    get_registry().counter(*catalog.SERVE_SHED).inc(amount)


def record_serve_deadline_expired() -> None:
    """A queued request's deadline passed before execution."""
    get_registry().counter(*catalog.SERVE_DEADLINE_EXPIRED).inc()


def record_serve_error() -> None:
    """A request failed with a server-side error."""
    get_registry().counter(*catalog.SERVE_ERRORS).inc()


def record_serve_batch(size: int) -> None:
    """One micro-batch dispatched to the thread pool."""
    get_registry().histogram(
        *catalog.SERVE_BATCH_SIZE, buckets=DEFAULT_SIZE_BUCKETS
    ).observe(size)


def record_serve_swap() -> None:
    """One zero-downtime engine snapshot swap published."""
    get_registry().counter(*catalog.SERVE_SWAPS).inc()


def set_serve_queue_depth(depth: int) -> None:
    """Current admission-queue occupancy."""
    get_registry().gauge(*catalog.SERVE_QUEUE_DEPTH).set(depth)


# ---------------------------------------------------------------------------
# Sharded-backend hooks (repro.shard)
# ---------------------------------------------------------------------------

def record_shard_query(fanout: int, seconds: float) -> None:
    """One scatter-gather query: workers fanned to + end-to-end latency."""
    registry = get_registry()
    registry.counter(*catalog.SHARD_QUERIES).inc()
    registry.histogram(
        *catalog.SHARD_FANOUT, buckets=DEFAULT_SIZE_BUCKETS
    ).observe(fanout)
    registry.histogram(*catalog.SHARD_SCATTER_LATENCY).observe(seconds)


def record_shard_crash() -> None:
    """A shard worker process died outside of an orderly shutdown."""
    get_registry().counter(*catalog.SHARD_WORKER_CRASHES).inc()


def record_shard_delta_publish() -> None:
    """An epoch roll shipped as a row-level delta, not a full re-export."""
    get_registry().counter(*catalog.SHARD_DELTA_PUBLISHES).inc()


def set_shard_epochs(current: int, workers_min: int) -> None:
    """Published pool epoch and the slowest live worker's epoch.

    The exporters derive ``shard_epoch_lag = current - workers_min``
    from these two gauges (see :func:`repro.obs.export.with_derived`).
    """
    registry = get_registry()
    registry.gauge(*catalog.SHARD_EPOCH).set(current)
    registry.gauge(*catalog.SHARD_WORKERS_MIN_EPOCH).set(workers_min)


# ---------------------------------------------------------------------------
# Self-tuning-controller hooks (repro.control)
# ---------------------------------------------------------------------------

def record_control_tick() -> None:
    """One controller evaluation tick completed (decision or no-op)."""
    get_registry().counter(*catalog.CONTROL_TICKS).inc()


def record_control_step(knob: str, value: float) -> None:
    """One bounded knob step applied; also refreshes the knob gauge."""
    get_registry().counter(*catalog.CONTROL_STEPS).inc()
    set_control_knob(knob, value)


def record_control_rollback(knob: str, value: float) -> None:
    """A step was reverted after a guarded SLO regressed behind it."""
    get_registry().counter(*catalog.CONTROL_ROLLBACKS).inc()
    set_control_knob(knob, value)


def record_control_guard_trip(reason: str) -> None:
    """An SLO guard breached this window: ``"p99"``, ``"shed"``, ``"error"``."""
    key = {
        "p99": catalog.CONTROL_GUARD_P99,
        "shed": catalog.CONTROL_GUARD_SHED,
        "error": catalog.CONTROL_GUARD_ERRORS,
    }[reason]
    registry = get_registry()
    registry.counter(*catalog.CONTROL_GUARD_TRIPS).inc()
    registry.counter(*key).inc()


def set_control_knob(knob: str, value: float) -> None:
    """Export the current value of a live tunable as a gauge."""
    key = catalog.CONTROL_KNOB_GAUGES.get(knob)
    if key is not None:
        get_registry().gauge(*key).set(value)


# ---------------------------------------------------------------------------
# Dynamic write-path hooks (repro.core.dynamic)
# ---------------------------------------------------------------------------

def record_flush(
    edits_applied: int,
    vertices_affected: int,
    repair_seconds: float,
    queue_depth: int,
) -> None:
    """One applied dynamic flush: what it absorbed and what it cost."""
    registry = get_registry()
    registry.counter(*catalog.FLUSH_EDITS_APPLIED).inc(edits_applied)
    registry.counter(*catalog.FLUSH_VERTICES_AFFECTED).inc(vertices_affected)
    registry.histogram(*catalog.FLUSH_REPAIR_SECONDS).observe(repair_seconds)
    registry.gauge(*catalog.FLUSH_QUEUE_DEPTH).set(queue_depth)


def set_flush_queue_depth(depth: int) -> None:
    """Staged + inflight edits awaiting a flush (health/export poll)."""
    get_registry().gauge(*catalog.FLUSH_QUEUE_DEPTH).set(depth)


def set_dynamic_snapshot_age(seconds: float) -> None:
    """Seconds since the dynamic engine last published an engine."""
    get_registry().gauge(*catalog.DYNAMIC_SNAPSHOT_AGE).set(seconds)
