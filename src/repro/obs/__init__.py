"""repro.obs — unified observability: metrics, traces, exporters.

The subsystem is **disabled by default** and costs one attribute check
per hook site when off.  Typical use::

    from repro import obs

    obs.enable()                      # or: with obs.session() as registry: ...
    engine = SimRankEngine(graph).preprocess()
    engine.top_k(42)
    print(obs.export.to_prometheus(obs.snapshot()))

Layout:

- :mod:`repro.obs.metrics` — ``MetricsRegistry`` with ``Counter`` /
  ``Gauge`` / fixed-bucket ``Histogram``, thread-safe and mergeable
  across processes;
- :mod:`repro.obs.tracing` — nested wall-clock spans in a ring buffer;
- :mod:`repro.obs.export` — JSON-lines and Prometheus text exposition;
- :mod:`repro.obs.instrument` — the pipeline hooks and the global
  on/off switch;
- :mod:`repro.obs.window` — ``MetricsWindow``, snapshot-diffing
  rate/quantile views for the self-tuning controller;
- :mod:`repro.obs.catalog` — the catalogue of every emitted metric.

See ``docs/observability.md`` for the metric catalogue.
"""

from repro.obs import catalog, export
from repro.obs.instrument import (
    OBS,
    collecting,
    disable,
    enable,
    enabled,
    get_registry,
    reset,
    session,
    snapshot,
    trace,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Span, Tracer, render_spans
from repro.obs.window import MetricsWindow, WindowStats

__all__ = [
    "OBS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsWindow",
    "Span",
    "Tracer",
    "WindowStats",
    "catalog",
    "collecting",
    "disable",
    "enable",
    "enabled",
    "export",
    "get_registry",
    "render_spans",
    "reset",
    "session",
    "snapshot",
    "trace",
]
