"""Lightweight span tracing with a ring buffer and a no-op fast path.

Usage::

    from repro.obs import trace

    with trace("query.topk", u=42):
        with trace("query.candidates"):
            ...

When tracing is disabled (the default), :func:`trace` returns a shared
no-op context manager — the cost is one attribute check plus an empty
``with`` block, no allocation.  When enabled, each exit appends a
:class:`Span` (name, start, duration, nesting depth, attributes) to a
bounded ring buffer, so a long-running service never grows its trace
memory — the newest ``capacity`` spans win.

Nesting depth is tracked per-thread, so spans recorded from a thread
pool interleave without corrupting each other's depth.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import ContextManager, Dict, Iterator, List, Optional

from repro.utils.sync import make_lock


__all__ = ["Span", "Tracer", "render_spans"]
@dataclass
class Span:
    """One completed traced region."""

    name: str
    start: float
    duration: float
    depth: int
    attrs: Dict[str, object] = field(default_factory=dict)


class _NoopContext:
    """Reusable, re-entrant do-nothing context manager (the fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        pass

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopContext()


class Tracer:
    """Bounded recorder of nested wall-clock spans."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled: bool = False
        self.capacity = capacity
        self._buffer: List[Optional[Span]] = [None] * capacity
        self._next = 0  # total spans ever written; write slot = _next % capacity
        self._lock = make_lock("Tracer._lock")
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def trace(self, name: str, **attrs: object) -> ContextManager[None]:
        """Context manager timing its body as a span named ``name``."""
        if not self.enabled:
            return _NOOP
        return self._record(name, attrs)

    @contextmanager
    def _record(self, name: str, attrs: Dict[str, object]) -> Iterator[None]:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            self._local.depth = depth
            span = Span(name=name, start=start, duration=duration, depth=depth, attrs=attrs)
            with self._lock:
                self._buffer[self._next % self.capacity] = span
                self._next += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring buffer since the last clear."""
        return max(0, self._next - self.capacity)

    def spans(self) -> List[Span]:
        """Recorded spans, oldest first (at most ``capacity`` of them)."""
        with self._lock:
            if self._next <= self.capacity:
                recorded = self._buffer[: self._next]
            else:
                head = self._next % self.capacity
                recorded = self._buffer[head:] + self._buffer[:head]
        return [span for span in recorded if span is not None]

    def clear(self) -> None:
        with self._lock:
            self._buffer = [None] * self.capacity
            self._next = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False


def render_spans(spans: List[Span]) -> str:
    """Indented text rendering of a span list (debug/CLI output)."""
    lines = []
    for span in spans:
        indent = "  " * span.depth
        attrs = (
            " " + " ".join(f"{k}={v}" for k, v in span.attrs.items())
            if span.attrs
            else ""
        )
        lines.append(f"{indent}{span.name}: {span.duration * 1e3:.3f} ms{attrs}")
    return "\n".join(lines)
