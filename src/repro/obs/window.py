"""`MetricsWindow` — snapshot-diffing windowed views over a registry.

Every metric in :mod:`repro.obs.metrics` is a *lifetime* aggregate: a
counter only ever grows, a histogram accumulates every observation
since the registry was created.  A feedback controller cannot act on
lifetime aggregates — after an hour of traffic the p99 of the lifetime
latency histogram barely moves when the last ten seconds regress, which
is exactly the regression a controller must catch.  The controller
therefore consumes *windows*: the delta between two successive registry
snapshots.

:meth:`MetricsWindow.advance` takes the current snapshot, diffs it
against the previous one, stores the new baseline, and returns a
:class:`WindowStats` holding only what happened in between:

- **counters** — the per-window increment.  Deltas are clamped at zero,
  so a registry swap/reset (the server installs a fresh registry per
  lifetime; tests call ``reset()``) can never produce a negative rate:
  the first window after a reset reports the new lifetime value, which
  is exactly the traffic since the reset.
- **histograms** — per-bucket count deltas (clamped the same way), so
  :meth:`WindowStats.quantile` is the quantile *of the window*, not of
  the process lifetime.  A bucket-layout change (different bounds)
  also re-baselines rather than producing garbage diffs.
- **gauges** — passed through at their latest value (a gauge is already
  a point-in-time reading).

The window object owns no locks of its own: snapshots are immutable
plain dicts produced under the registry's internal locks, and a window
is advanced from exactly one consumer (the controller tick).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.metrics import Snapshot

__all__ = ["HistogramWindow", "WindowStats", "MetricsWindow"]


class HistogramWindow:
    """One histogram's per-window bucket deltas with quantile support."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(
        self, buckets: List[float], counts: List[int], total: float, count: int
    ) -> None:
        self.buckets = buckets
        self.counts = counts
        self.sum = total
        self.count = count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile of the window's observations.

        Mirrors :meth:`repro.obs.metrics.Histogram.quantile` (upper
        bound of the bucket holding the q-th observation), but over the
        window's delta counts only.  Returns 0.0 for an empty window.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for bound, c in zip(self.buckets, self.counts):
            running += c
            if running >= target:
                return bound
        return self.buckets[-1]


class WindowStats:
    """What happened between two registry snapshots.

    Accessors take ``"subsystem.name"`` keys (the snapshot key form) and
    return zero-valued defaults for metrics absent from the window, so
    controller rules never need existence checks.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(
        self,
        counters: Dict[str, float],
        gauges: Dict[str, float],
        histograms: Dict[str, HistogramWindow],
    ) -> None:
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms

    def delta(self, key: str) -> float:
        """The counter's increment over the window (0.0 if absent)."""
        return self.counters.get(key, 0.0)

    def gauge(self, key: str, default: float = 0.0) -> float:
        """The gauge's latest value (``default`` if never set)."""
        return self.gauges.get(key, default)

    def count(self, key: str) -> int:
        """Observations the histogram recorded inside the window."""
        hist = self.histograms.get(key)
        return hist.count if hist is not None else 0

    def mean(self, key: str) -> float:
        """Mean of the histogram's window observations (0.0 if empty)."""
        hist = self.histograms.get(key)
        return hist.mean if hist is not None else 0.0

    def quantile(self, key: str, q: float) -> float:
        """Windowed bucket-resolution quantile (0.0 for an empty window)."""
        hist = self.histograms.get(key)
        return hist.quantile(q) if hist is not None else 0.0

    def ratio(self, numerator: str, denominator: str) -> float:
        """``delta(numerator) / delta(denominator)``, 0.0 on an empty base."""
        base = self.delta(denominator)
        return self.delta(numerator) / base if base > 0 else 0.0


class MetricsWindow:
    """Successive-snapshot differ: each ``advance`` yields one window.

    The baseline starts empty, so the first ``advance`` reports the
    lifetime values — i.e. everything since the registry was created,
    which for a freshly started server is the first real window.
    """

    def __init__(self) -> None:
        self._previous: Optional[Snapshot] = None

    def advance(self, snapshot: Snapshot) -> WindowStats:
        """Diff ``snapshot`` against the stored baseline and replace it."""
        previous = self._previous if self._previous is not None else {}
        self._previous = snapshot

        prev_counters = previous.get("counters", {})
        counters: Dict[str, float] = {}
        for key, value in snapshot.get("counters", {}).items():
            delta = float(value) - float(prev_counters.get(key, 0.0))
            # A smaller lifetime value means the registry was reset or
            # swapped; the honest window is then the new lifetime value.
            counters[key] = float(value) if delta < 0 else delta

        gauges: Dict[str, float] = {
            key: float(value) for key, value in snapshot.get("gauges", {}).items()
        }

        prev_hists = previous.get("histograms", {})
        histograms: Dict[str, HistogramWindow] = {}
        for key, payload in snapshot.get("histograms", {}).items():
            buckets = [float(b) for b in payload["buckets"]]
            counts = [int(c) for c in payload["counts"]]
            total = float(payload["sum"])
            count = int(payload["count"])
            prev = prev_hists.get(key)
            if prev is not None and [float(b) for b in prev["buckets"]] == buckets:
                prev_counts = [int(c) for c in prev["counts"]]
                prev_count = int(prev["count"])
                if count >= prev_count:
                    counts = [c - p for c, p in zip(counts, prev_counts)]
                    # Clamp per-bucket: merge() only adds, but a reset
                    # mid-scrape could interleave; never go negative.
                    counts = [max(0, c) for c in counts]
                    total = max(0.0, total - float(prev["sum"]))
                    count = count - prev_count
                # else: reset detected — fall through with lifetime values.
            histograms[key] = HistogramWindow(buckets, counts, total, count)

        return WindowStats(counters, gauges, histograms)

    def reset(self) -> None:
        """Forget the baseline; the next window reports lifetime values."""
        self._previous = None
