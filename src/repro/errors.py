"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still distinguishing specific failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """An edge list or serialized graph could not be parsed."""


class VertexError(ReproError, IndexError):
    """A vertex id is outside the valid range ``[0, n)`` of a graph."""

    def __init__(self, vertex: int, n: int) -> None:
        super().__init__(f"vertex {vertex} out of range for graph with {n} vertices")
        self.vertex = vertex
        self.n = n


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid (e.g. decay factor outside (0, 1))."""


class IndexNotBuiltError(ReproError, RuntimeError):
    """A query was issued before :meth:`SimRankEngine.preprocess` was run."""


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""


class SerializationError(ReproError):
    """A saved index or graph file is corrupt or of an unsupported version."""


class ContractViolationError(ReproError, TypeError):
    """A numpy kernel's declared dtype/shape contract was violated, or a
    contract declaration itself is malformed."""


class ServeError(ReproError):
    """A request to a :mod:`repro.serve` server failed server-side."""


class ProtocolError(ServeError):
    """A line on the wire was not a valid newline-delimited-JSON message."""


class ServerOverloadedError(ServeError):
    """The admission queue was full and the request was shed (HTTP 503 moral)."""


class DeadlineExceededError(ServeError):
    """The request's deadline passed before the server could execute it."""


class ShardError(ReproError):
    """A scatter-gather operation against a :class:`repro.shard.ShardPool`
    failed (a worker replied with an error, or the pool is closed)."""


class ShardCrashError(ShardError):
    """A shard worker process died while requests were outstanding."""


class ShardTimeoutError(ShardError):
    """A shard worker did not reply within the pool's gather timeout."""
