"""Terminal plotting for the figure experiments.

The paper's Figures 1 and 2 are plots; reproducing them as summary
statistics alone loses the visual sanity check.  This module renders
small scatter plots and line charts in plain ASCII so
``python -m repro.experiments.runner figure1 figure2`` shows the same
shapes the paper prints — no plotting dependency required.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple


def _nice_ticks(lo: float, hi: float, count: int = 4) -> List[float]:
    if not math.isfinite(lo) or not math.isfinite(hi) or lo == hi:
        return [lo]
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 56,
    height: int = 18,
    log: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    marker: str = "*",
) -> str:
    """Render an (optionally log-log) scatter plot as ASCII art.

    Points outside the positive quadrant are dropped in log mode, as a
    log-log plot must.  Overplotted cells escalate ``* -> o -> @`` so
    density remains visible.
    """
    if width < 10 or height < 5:
        raise ValueError("plot area too small (need width >= 10, height >= 5)")
    pairs = [
        (float(x), float(y))
        for x, y in zip(xs, ys)
        if math.isfinite(x) and math.isfinite(y) and (not log or (x > 0 and y > 0))
    ]
    if not pairs:
        return f"{title}\n(no plottable points)"

    def fwd(value: float) -> float:
        return math.log10(value) if log else value

    px = [fwd(x) for x, _ in pairs]
    py = [fwd(y) for _, y in pairs]
    x_lo, x_hi = min(px), max(px)
    y_lo, y_hi = min(py), max(py)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    escalation = {" ": marker, marker: "o", "o": "@", "@": "@"}
    for x, y in zip(px, py):
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        row = height - 1 - row  # origin bottom-left
        grid[row][col] = escalation.get(grid[row][col], "@")

    def fmt(value: float) -> str:
        real = 10**value if log else value
        return f"{real:.3g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    axis_label_width = max(len(fmt(y_lo)), len(fmt(y_hi)))
    for i, row in enumerate(grid):
        if i == 0:
            label = fmt(y_hi)
        elif i == height - 1:
            label = fmt(y_lo)
        else:
            label = ""
        lines.append(f"{label:>{axis_label_width}} |" + "".join(row))
    lines.append(" " * axis_label_width + " +" + "-" * width)
    x_axis = f"{fmt(x_lo)}" + " " * max(1, width - len(fmt(x_lo)) - len(fmt(x_hi))) + fmt(x_hi)
    lines.append(" " * (axis_label_width + 2) + x_axis)
    footer = []
    if xlabel:
        footer.append(f"x: {xlabel}")
    if ylabel:
        footer.append(f"y: {ylabel}")
    if log:
        footer.append("log-log")
    if footer:
        lines.append(" " * (axis_label_width + 2) + "  ".join(footer))
    return "\n".join(lines)


def line_chart(
    xs: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    width: int = 56,
    height: int = 14,
    title: str = "",
    xlabel: str = "",
    reference: Optional[Tuple[str, float]] = None,
) -> str:
    """Render one or more named series over shared x values.

    ``reference`` draws a horizontal dashed line (Figure 2's network
    average distance).  Each series gets a distinct marker, listed in
    the legend.
    """
    markers = "*+x%#&"
    values = [v for _, ys in series for v in ys if math.isfinite(v)]
    if reference is not None:
        values.append(reference[1])
    if not values:
        return f"{title}\n(no plottable points)"
    y_lo, y_hi = min(values), max(values)
    y_span = (y_hi - y_lo) or 1.0
    x_lo, x_hi = min(xs), max(xs)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, mark: str) -> None:
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = height - 1 - min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        grid[row][col] = mark

    if reference is not None:
        ref_row = height - 1 - min(
            height - 1, int((reference[1] - y_lo) / y_span * (height - 1))
        )
        for col in range(width):
            if col % 2 == 0:
                grid[ref_row][col] = "-"

    legend: List[str] = []
    for index, (name, ys) in enumerate(series):
        mark = markers[index % len(markers)]
        legend.append(f"{mark} {name}")
        for x, y in zip(xs, ys):
            if math.isfinite(y):
                place(float(x), float(y), mark)

    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max(len(f"{y_lo:.2f}"), len(f"{y_hi:.2f}"))
    for i, row in enumerate(grid):
        label = f"{y_hi:.2f}" if i == 0 else (f"{y_lo:.2f}" if i == height - 1 else "")
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_lo:g}" + " " * max(1, width - len(f"{x_lo:g}") - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * (label_width + 2) + x_axis)
    footer = list(legend)
    if reference is not None:
        footer.append(f"-- {reference[0]}")
    if xlabel:
        footer.append(f"x: {xlabel}")
    lines.append(" " * (label_width + 2) + "  ".join(footer))
    return "\n".join(lines)
