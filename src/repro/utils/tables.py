"""Plain-text table rendering for experiment reports.

The experiment harness prints tables mirroring the layout of the paper's
Tables 3 and 4.  We render with simple ASCII so output survives logs,
CI, and ``tee`` without a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_float(value: Optional[float], digits: int = 5) -> str:
    """Format a float for a table cell; ``None`` renders as the paper's em-dash."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"


def format_seconds(seconds: Optional[float]) -> str:
    """Format a duration the way the paper does (ms / s / h as magnitude fits)."""
    if seconds is None:
        return "-"
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    if seconds < 3600.0:
        return f"{seconds:.1f} s"
    return f"{seconds / 3600.0:.1f} h"


class Table:
    """Accumulate rows and render an aligned ASCII table.

    >>> table = Table(["Dataset", "n", "m"])
    >>> table.add_row(["ca-GrQc", 5242, 14496])
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    Dataset | n    | m
    --------+------+------
    ca-GrQc | 5242 | 14496
    """

    def __init__(self, columns: Sequence[str], title: str = "") -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Iterable[object]) -> None:
        """Append one row; cells are stringified, ``None`` becomes ``-``."""
        row = ["-" if cell is None else str(cell) for cell in cells]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Render the table (and optional title) as a string."""
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(self.columns))
        rule = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
            for row in self.rows
        ]
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(header.rstrip())
        lines.append(rule)
        lines.extend(body)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
