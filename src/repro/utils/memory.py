"""Memory accounting helpers.

The paper's Table 4 reports index sizes for each algorithm.  Rather than
sampling the OS allocator (noisy, interpreter-dependent), we account for
the actual payload arrays and containers each index owns, which matches
how the paper reasons about space (O(m), O(nR'), O(n^2) ...).
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, List, Mapping

import numpy as np


def nbytes_of_arrays(arrays: Iterable[np.ndarray]) -> int:
    """Total payload bytes of a collection of numpy arrays."""
    return int(sum(int(a.nbytes) for a in arrays))


def nbytes_of_int_lists(lists: Iterable[List[int]]) -> int:
    """Approximate payload bytes of lists of Python ints (index candidates).

    Counts 8 bytes per element, i.e. the size the data *would* occupy in a
    packed int64 array.  This deliberately undercounts CPython object
    overhead: the paper's space numbers describe packed C++ storage, and
    we want cross-algorithm ratios to reflect algorithmic space, not
    interpreter boxing.
    """
    return int(sum(8 * len(lst) for lst in lists))


def nbytes_of_mapping(mapping: Mapping[int, float]) -> int:
    """Approximate payload bytes of an int->float mapping (16 bytes/entry)."""
    return 16 * len(mapping)


def deep_getsizeof_sample(obj: object) -> int:
    """Interpreter-reported size of an object (non-recursive), for debugging."""
    return sys.getsizeof(obj)


def human_bytes(nbytes: int) -> str:
    """Render a byte count the way Table 4 does (KB / MB / GB)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    value = float(nbytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")


def breakdown_to_str(breakdown: Dict[str, int]) -> str:
    """Render a component->bytes breakdown on one line, largest first."""
    parts = sorted(breakdown.items(), key=lambda kv: -kv[1])
    return ", ".join(f"{name}={human_bytes(size)}" for name, size in parts)
