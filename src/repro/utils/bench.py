"""Versioned benchmark-sidecar schema: one header, one loader.

The repo's benchmark gates persist machine-readable sidecars at the
repo root — ``BENCH_kernels.json`` (kernel micro-benchmarks),
``BENCH_shard.json`` (scatter-gather throughput), ``BENCH_tune.json``
(offline controller tuning), ``BENCH_lint.json`` (analyzer wall time,
cold vs. warm cache), ``BENCH_dynamic.json`` (dynamic-write pipeline
throughput).  Before this module each writer invented
its own top-level shape and every consumer (CI checks, docs tooling)
had to guess which file it was holding.  Now every sidecar carries the
same header::

    {"schema": {"name": "repro-bench-sidecar", "version": 1,
                "kind": "shard"}, ...payload...}

- :func:`write_sidecar` stamps the header and writes the file
  atomically-enough for CI (single ``write_text``);
- :func:`load_sidecar` validates the header and returns the payload,
  accepting header-less files as *legacy version 0* so pre-existing
  committed sidecars keep loading during the transition.

Bump :data:`SCHEMA_VERSION` only for breaking header changes; payload
shapes are owned by each ``kind`` and may evolve freely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import SerializationError

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "sidecar_header",
    "write_sidecar",
    "load_sidecar",
]

SCHEMA_NAME = "repro-bench-sidecar"
SCHEMA_VERSION = 1

#: The sidecar kinds in use; new benchmarks register here so the loader
#: can reject a typo'd kind instead of silently accepting anything.
KNOWN_KINDS = ("kernels", "shard", "tune", "lint", "dynamic")


def sidecar_header(kind: str) -> Dict[str, Any]:
    """The ``schema`` block every sidecar leads with."""
    if kind not in KNOWN_KINDS:
        raise SerializationError(
            f"unknown sidecar kind {kind!r}; known kinds: {KNOWN_KINDS}"
        )
    return {"name": SCHEMA_NAME, "version": SCHEMA_VERSION, "kind": kind}


def write_sidecar(
    path: Union[str, Path], kind: str, payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Stamp ``payload`` with the schema header and write it to ``path``.

    Returns the full document that was written.  ``payload`` must not
    already contain a ``schema`` key (that would silently shadow the
    stamp).
    """
    if "schema" in payload:
        raise SerializationError("payload already has a 'schema' key")
    document: Dict[str, Any] = {"schema": sidecar_header(kind)}
    document.update(payload)
    Path(path).write_text(json.dumps(document, indent=2) + "\n")
    return document


def load_sidecar(
    path: Union[str, Path],
    kind: Optional[str] = None,
    allow_legacy: bool = True,
) -> Dict[str, Any]:
    """Read, validate, and return a sidecar document.

    ``kind`` (when given) must match the header's kind.  Files without
    a ``schema`` block are treated as legacy version 0 and passed
    through when ``allow_legacy`` is true — their kind is unverifiable,
    so a requested ``kind`` is not enforced against them.
    """
    p = Path(path)
    try:
        document = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read sidecar {p}: {exc}") from exc
    if not isinstance(document, dict):
        raise SerializationError(f"sidecar {p} is not a JSON object")
    schema = document.get("schema")
    if schema is None:
        if not allow_legacy:
            raise SerializationError(f"sidecar {p} has no schema header")
        return document
    if not isinstance(schema, dict) or schema.get("name") != SCHEMA_NAME:
        raise SerializationError(
            f"sidecar {p} has a foreign schema header: {schema!r}"
        )
    version = schema.get("version")
    if not isinstance(version, int) or version < 1 or version > SCHEMA_VERSION:
        raise SerializationError(
            f"sidecar {p} schema version {version!r} is outside the supported "
            f"range [1, {SCHEMA_VERSION}]"
        )
    if kind is not None and schema.get("kind") != kind:
        raise SerializationError(
            f"sidecar {p} is kind {schema.get('kind')!r}, expected {kind!r}"
        )
    return document
