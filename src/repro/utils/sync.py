"""Lock construction with an optional runtime-sanitizer indirection.

Every lock that guards cross-thread state in this codebase is created
through :func:`make_lock` / :func:`make_rlock` instead of calling
``threading.Lock()`` directly.  In normal operation the factories return
the plain stdlib primitives — zero overhead, identical semantics.  Under
``REPRO_SANITIZE=1`` (or after
:func:`repro.analysis.sanitizer.enable`) they return order-recording
proxies from :mod:`repro.analysis.sanitizer.locks`, which maintain
per-thread acquisition stacks and a global lock-order DAG so that
lock-order inversions raise
:class:`~repro.analysis.sanitizer.SanitizerError` instead of
deadlocking.  See ``docs/static-analysis.md``.

The sanitizer switch lives here (not in ``repro.analysis``) so the hot
paths — :func:`repro.utils.rng.ensure_rng` checks it per call — pay one
module-global read, and so ``repro.utils`` never imports the analysis
package unless sanitizing is actually on.  The ``REPRO_SANITIZE``
environment variable is read once at import time (worker processes
re-import, so it propagates across ``multiprocessing`` boundaries);
in-process toggling goes through :func:`_set_active`.
"""

from __future__ import annotations

import os
import threading
from typing import ContextManager

__all__ = ["make_lock", "make_rlock", "sanitizer_active"]

#: Truthy values for the REPRO_SANITIZE environment variable.
_active: bool = os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def sanitizer_active() -> bool:
    """Whether sanitized primitives should be handed out right now."""
    return _active


def _set_active(value: bool) -> None:
    """Flip the process-wide switch (called by ``repro.analysis.sanitizer``)."""
    global _active
    _active = bool(value)


def make_lock(name: str = "lock") -> "ContextManager[bool]":
    """A mutex: ``threading.Lock()``, or an order-recording proxy when
    sanitizing.  ``name`` labels the lock in sanitizer reports."""
    if _active:
        from repro.analysis.sanitizer.locks import SanitizedLock

        return SanitizedLock(name)
    return threading.Lock()


def make_rlock(name: str = "lock") -> "ContextManager[bool]":
    """Like :func:`make_lock` but reentrant (``threading.RLock()``)."""
    if _active:
        from repro.analysis.sanitizer.locks import SanitizedRLock

        return SanitizedRLock(name)
    return threading.RLock()
