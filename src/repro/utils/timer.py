"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Timer:
    """Accumulating stopwatch.

    ``Timer`` records every measured interval, so experiments can report a
    mean, a total, or the full distribution of query latencies.

    >>> timer = Timer()
    >>> with timer.measure():
    ...     sum(range(100))
    4950
    >>> timer.count
    1
    """

    intervals: List[float] = field(default_factory=list)

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager that appends the elapsed time of its body."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.intervals.append(time.perf_counter() - start)

    @property
    def total(self) -> float:
        """Sum of all measured intervals in seconds."""
        return sum(self.intervals)

    @property
    def count(self) -> int:
        """Number of measured intervals."""
        return len(self.intervals)

    @property
    def mean(self) -> float:
        """Mean interval length in seconds (0.0 when nothing was measured)."""
        return self.total / self.count if self.intervals else 0.0

    @property
    def median(self) -> float:
        """Median interval in seconds (0.0 when nothing was measured) —
        the robust statistic for small trial counts with outliers."""
        if not self.intervals:
            return 0.0
        ordered = sorted(self.intervals)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    def percentile(self, p: float) -> float:
        """The p-th percentile interval, linearly interpolated.

        ``p`` is in [0, 100].  Tail percentiles are *the* serving
        metric: a mean hides the slow queries users actually feel.

        >>> t = Timer(intervals=[0.1, 0.2, 0.3, 0.4])
        >>> round(t.percentile(50), 3)
        0.25
        >>> t.percentile(100)
        0.4
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.intervals:
            return 0.0
        ordered = sorted(self.intervals)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    @property
    def p95(self) -> float:
        """95th-percentile interval in seconds."""
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        """99th-percentile interval in seconds."""
        return self.percentile(99.0)

    @property
    def last(self) -> float:
        """Most recent interval in seconds (0.0 when nothing was measured)."""
        return self.intervals[-1] if self.intervals else 0.0

    def reset(self) -> None:
        """Drop all recorded intervals."""
        self.intervals.clear()


def timed(fn: Callable[[], T]) -> Tuple[T, float]:
    """Run ``fn`` once and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
