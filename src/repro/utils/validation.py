"""Small argument-validation helpers shared across the library."""

from __future__ import annotations

from repro.errors import ConfigError


def check_positive_int(name: str, value: int) -> int:
    """Ensure ``value`` is an integer >= 1, returning it for chaining."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ConfigError(f"{name} must be >= 1, got {value}")
    return value


def check_nonnegative_int(name: str, value: int) -> int:
    """Ensure ``value`` is an integer >= 0, returning it for chaining."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Ensure ``value`` lies strictly inside (0, 1) — e.g. the decay factor c."""
    value = float(value)
    if not 0.0 < value < 1.0:
        raise ConfigError(f"{name} must be in the open interval (0, 1), got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value}")
    return value
