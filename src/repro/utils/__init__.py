"""Shared utilities: RNG handling, timing, table rendering, memory accounting."""

from repro.utils.memory import human_bytes, nbytes_of_arrays
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import Table, format_float, format_seconds
from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_fraction,
    check_positive_int,
    check_probability,
)

__all__ = [
    "Table",
    "Timer",
    "check_fraction",
    "check_positive_int",
    "check_probability",
    "ensure_rng",
    "format_float",
    "format_seconds",
    "human_bytes",
    "nbytes_of_arrays",
    "spawn_rngs",
    "timed",
]
