"""Lightweight dtype/shape contracts for public numpy kernels.

The walk engine and the bound tables pass raw ``np.ndarray`` payloads
across module boundaries; a wrong dtype does not crash, it silently
degrades (a float64 position array makes fancy-indexing copies; an
int32 one overflows on the key-packing trick in ``compute_gamma_all``).
The :func:`contract` decorator makes the expectation explicit, checks
it at runtime for a few hundred nanoseconds per call, and — because the
declaration is a literal in the decorator — lets ``repro lint`` (rules
R5 and R13–R16) cross-validate declarations and call sites statically.

Usage::

    @contract(positions="int64", returns="int64")
    def step(self, positions: np.ndarray) -> np.ndarray: ...

    @contract(returns="float64[1d]")
    def compute_gamma(...) -> np.ndarray: ...

    @contract(positions="int64[W]", segments="int64[W]")
    def segment_self_collisions(positions, segments, ...) -> np.ndarray: ...

A spec is ``"<dtype>"`` (any shape), ``"<dtype>[<n>d]"`` (exact ndim),
or ``"<dtype>[D1, D2, ...]"`` where each ``D`` is an integer extent or
a named shape symbol.  Symbolic dims fix the rank always; under the
runtime sanitizer (``REPRO_SANITIZE=1`` / ``pytest --sanitize``) each
named symbol must additionally bind to one consistent value across all
parameters and the return value of a single call — ``[W]`` on two
parameters means "same length", checked per invocation.

Checks apply only to values that already *are* ndarrays: array-likes
(lists, scalars) pass through untouched, so contracts never tighten a
kernel's accepted input types — they catch the case where an actual
array of the wrong dtype/rank/shape would be consumed silently.

Kernels whose header carries a ``# no-alloc`` comment additionally run
under the sanitizer's array-allocation accounting
(:mod:`repro.analysis.sanitizer.arrays`): after a warm-up call, any
call that invokes a redundant-copy allocator (``np.concatenate``,
``np.append``, ``np.copy``, ...) raises — the dynamic witness of the
static hot-path rule R15.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar, Union

import numpy as np

from repro.errors import ContractViolationError
from repro.utils.sync import sanitizer_active

__all__ = ["ArraySpec", "contract", "parse_spec"]

_SPEC_RE = re.compile(r"^(?P<dtype>[a-z0-9_]+)(?:\[(?P<shape>[^\[\]]+)\])?$")
_NDIM_RE = re.compile(r"^(?P<ndim>\d+)d$")
_DIM_RE = re.compile(r"^(?:[A-Za-z_][A-Za-z0-9_]*|\d+)$")

#: exact-match comment marking a kernel for zero-alloc accounting.
_NO_ALLOC_RE = re.compile(r"(?:^|\s)#\s*no-alloc\s*$")

#: dtype names a spec may use (numpy canonical names).
KNOWN_DTYPES = frozenset(
    {
        "bool",
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float16", "float32", "float64",
        "complex64", "complex128",
    }
)

F = TypeVar("F", bound=Callable[..., Any])

#: one dimension of a shape spec: a concrete extent or a named symbol.
Dim = Union[int, str]


@dataclass(frozen=True)
class ArraySpec:
    """One parsed contract entry: required dtype, optional ndim/shape.

    ``dims`` is set only for the named-shape form; ``ndim`` is always
    set whenever the rank is constrained (derived from ``dims`` when
    present), so rank checks never need to consult both fields.
    """

    dtype: str
    ndim: Optional[int] = None
    dims: Optional[Tuple[Dim, ...]] = None

    def describe(self) -> str:
        if self.dims is not None:
            return f"{self.dtype}[{', '.join(str(d) for d in self.dims)}]"
        return self.dtype if self.ndim is None else f"{self.dtype}[{self.ndim}d]"

    def symbols(self) -> Tuple[str, ...]:
        """The named shape symbols this spec binds (may be empty)."""
        if self.dims is None:
            return ()
        return tuple(d for d in self.dims if isinstance(d, str))


def parse_spec(name: str, spec: str) -> ArraySpec:
    """Parse ``"int64"`` / ``"float64[2d]"`` / ``"int64[T, R]"``.

    Raises :class:`ContractViolationError` on nonsense specs so a typo
    can never ship as a silently unchecked contract.
    """
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ContractViolationError(
            f"contract spec for {name!r} is malformed: {spec!r} "
            "(expected '<dtype>', '<dtype>[<n>d]' or '<dtype>[D1, D2, ...]')"
        )
    dtype = match.group("dtype")
    if dtype not in KNOWN_DTYPES:
        raise ContractViolationError(
            f"contract spec for {name!r} names unknown dtype {dtype!r}"
        )
    shape = match.group("shape")
    if shape is None:
        return ArraySpec(dtype=dtype)
    ndim_match = _NDIM_RE.match(shape.strip())
    if ndim_match is not None:
        return ArraySpec(dtype=dtype, ndim=int(ndim_match.group("ndim")))
    dims: List[Dim] = []
    for token in shape.split(","):
        token = token.strip()
        if not token or _DIM_RE.match(token) is None:
            raise ContractViolationError(
                f"contract spec for {name!r} has a malformed dimension "
                f"{token!r} in {spec!r} (each dim is an integer or a "
                "shape-symbol identifier)"
            )
        dims.append(int(token) if token.isdigit() else token)
    return ArraySpec(dtype=dtype, ndim=len(dims), dims=tuple(dims))


def _check(
    qualname: str,
    label: str,
    value: object,
    spec: ArraySpec,
    bindings: Optional[Dict[str, int]] = None,
) -> None:
    if not isinstance(value, np.ndarray):
        return
    if value.dtype.name != spec.dtype:
        raise ContractViolationError(
            f"{qualname}: {label} must be {spec.describe()}, "
            f"got dtype {value.dtype.name}"
        )
    if spec.ndim is not None and value.ndim != spec.ndim:
        raise ContractViolationError(
            f"{qualname}: {label} must be {spec.describe()}, "
            f"got {value.ndim}-d array"
        )
    if spec.dims is None:
        return
    for axis, dim in enumerate(spec.dims):
        extent = value.shape[axis]
        if isinstance(dim, int):
            if extent != dim:
                raise ContractViolationError(
                    f"{qualname}: {label} must be {spec.describe()}, "
                    f"got extent {extent} on axis {axis}"
                )
        elif bindings is not None:
            bound = bindings.get(dim)
            if bound is None:
                bindings[dim] = extent
            elif bound != extent:
                raise ContractViolationError(
                    f"{qualname}: shape symbol {dim!r} is inconsistent — "
                    f"{label} has extent {extent} on axis {axis} but an "
                    f"earlier value bound {dim!r} to {bound}"
                )


def _marked_no_alloc(fn: Callable[..., Any]) -> bool:
    """Whether the function's header carries a ``# no-alloc`` comment.

    The marker must sit on a decorator line or on the ``def`` signature
    (anywhere before the first body statement) — the same grammar the
    static analyzer reads, so the static and runtime views of which
    kernels are allocation-free never drift apart.
    """
    import ast
    import inspect
    import textwrap

    try:
        lines, _ = inspect.getsourcelines(fn)
    except (OSError, TypeError):  # pragma: no cover - source unavailable
        return False
    try:
        tree = ast.parse(textwrap.dedent("".join(lines)))
    except SyntaxError:  # pragma: no cover - dedent artefacts
        return False
    if not tree.body:
        return False
    node = tree.body[0]
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) or not node.body:
        return False
    header = lines[: node.body[0].lineno - 1]
    return any(_NO_ALLOC_RE.search(line) for line in header)


def contract(**specs: str) -> Callable[[F], F]:
    """Declare and enforce array dtypes/ranks/shapes on a kernel.

    Keyword names must match the wrapped function's parameters (plus the
    special key ``returns``); mismatched names raise at decoration time
    so a typo can never ship as a silently unchecked contract.  Keyword
    and positional call styles are validated identically: a parameter's
    positional index is used only when it genuinely *is* positional
    (``*args``/keyword-only parameters never borrow a tuple slot).
    """

    def decorate(fn: F) -> F:
        import inspect

        signature = inspect.signature(fn)
        parameters = list(signature.parameters)
        parsed: Dict[str, ArraySpec] = {
            key: parse_spec(key, value) for key, value in specs.items()
        }
        returns = parsed.pop("returns", None)
        for key in parsed:
            if key not in parameters:
                raise ContractViolationError(
                    f"contract on {fn.__qualname__} names unknown parameter {key!r}"
                )
        # Positional lookup table so the per-call path never re-binds
        # the signature: (param name, positional index or None, spec).
        # Only genuinely positional parameters get an index — a
        # keyword-only parameter declared after ``*args`` must never be
        # looked up in the args tuple (it would validate an unrelated
        # positional value against the wrong spec).
        positional_kinds = (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
        position_of: Dict[str, int] = {
            name: index
            for index, (name, param) in enumerate(signature.parameters.items())
            if param.kind in positional_kinds
        }
        checkers: List[Tuple[str, Optional[int], ArraySpec]] = [
            (key, position_of.get(key), spec) for key, spec in parsed.items()
        ]
        all_specs = list(parsed.values()) + ([returns] if returns is not None else [])
        has_symbols = any(spec.symbols() for spec in all_specs)
        no_alloc = _marked_no_alloc(fn)
        qualname = fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            # Shape-symbol binding is a sanitizer-mode check: one dict
            # per call, each named dim must take one consistent value.
            bindings: Optional[Dict[str, int]] = (
                {} if has_symbols and sanitizer_active() else None
            )
            for key, position, spec in checkers:
                if key in kwargs:
                    value = kwargs[key]
                elif position is not None and position < len(args):
                    value = args[position]
                else:
                    continue
                _check(qualname, f"argument {key!r}", value, spec, bindings)
            if no_alloc and sanitizer_active():
                from repro.analysis.sanitizer.arrays import ALLOC_MONITOR

                with ALLOC_MONITOR.track(qualname):
                    result = fn(*args, **kwargs)
            else:
                result = fn(*args, **kwargs)
            if returns is not None:
                _check(qualname, "return value", result, returns, bindings)
            return result

        wrapper.__contract__ = {  # type: ignore[attr-defined]
            "params": dict(parsed),
            "returns": returns,
            "no_alloc": no_alloc,
        }
        return wrapper  # type: ignore[return-value]

    return decorate
