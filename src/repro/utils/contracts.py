"""Lightweight dtype/shape contracts for public numpy kernels.

The walk engine and the bound tables pass raw ``np.ndarray`` payloads
across module boundaries; a wrong dtype does not crash, it silently
degrades (a float64 position array makes fancy-indexing copies; an
int32 one overflows on the key-packing trick in ``compute_gamma_all``).
The :func:`contract` decorator makes the expectation explicit, checks
it at runtime for a few hundred nanoseconds per call, and — because the
declaration is a literal in the decorator — lets ``repro lint`` (rule
R5) cross-validate call sites statically.

Usage::

    @contract(positions="int64", returns="int64")
    def step(self, positions: np.ndarray) -> np.ndarray: ...

    @contract(returns="float64[1d]")
    def compute_gamma(...) -> np.ndarray: ...

A spec is ``"<dtype>"`` (any shape) or ``"<dtype>[<n>d]"`` (exact
ndim).  Checks apply only to values that already *are* ndarrays:
array-likes (lists, scalars) pass through untouched, so contracts never
tighten a kernel's accepted input types — they catch the case where an
actual array of the wrong dtype/rank would be consumed silently.
"""

from __future__ import annotations

import functools
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

import numpy as np

from repro.errors import ContractViolationError

__all__ = ["ArraySpec", "contract", "parse_spec"]

_SPEC_RE = re.compile(r"^(?P<dtype>[a-z0-9_]+)(?:\[(?P<ndim>\d+)d\])?$")

#: dtype names a spec may use (numpy canonical names).
KNOWN_DTYPES = frozenset(
    {
        "bool",
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float16", "float32", "float64",
        "complex64", "complex128",
    }
)

F = TypeVar("F", bound=Callable[..., Any])


@dataclass(frozen=True)
class ArraySpec:
    """One parsed contract entry: required dtype and optional ndim."""

    dtype: str
    ndim: Optional[int] = None

    def describe(self) -> str:
        return self.dtype if self.ndim is None else f"{self.dtype}[{self.ndim}d]"


def parse_spec(name: str, spec: str) -> ArraySpec:
    """Parse ``"int64"`` / ``"float64[2d]"``; raise on nonsense specs."""
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ContractViolationError(
            f"contract spec for {name!r} is malformed: {spec!r} "
            "(expected '<dtype>' or '<dtype>[<n>d]')"
        )
    dtype = match.group("dtype")
    if dtype not in KNOWN_DTYPES:
        raise ContractViolationError(
            f"contract spec for {name!r} names unknown dtype {dtype!r}"
        )
    ndim = match.group("ndim")
    return ArraySpec(dtype=dtype, ndim=int(ndim) if ndim is not None else None)


def _check(qualname: str, label: str, value: object, spec: ArraySpec) -> None:
    if not isinstance(value, np.ndarray):
        return
    if value.dtype.name != spec.dtype:
        raise ContractViolationError(
            f"{qualname}: {label} must be {spec.describe()}, "
            f"got dtype {value.dtype.name}"
        )
    if spec.ndim is not None and value.ndim != spec.ndim:
        raise ContractViolationError(
            f"{qualname}: {label} must be {spec.describe()}, "
            f"got {value.ndim}-d array"
        )


def contract(**specs: str) -> Callable[[F], F]:
    """Declare and enforce array dtypes/ranks on a kernel's signature.

    Keyword names must match the wrapped function's parameters (plus the
    special key ``returns``); mismatched names raise at decoration time
    so a typo can never ship as a silently unchecked contract.
    """

    def decorate(fn: F) -> F:
        import inspect

        signature = inspect.signature(fn)
        parameters = list(signature.parameters)
        parsed: Dict[str, ArraySpec] = {
            key: parse_spec(key, value) for key, value in specs.items()
        }
        returns = parsed.pop("returns", None)
        for key in parsed:
            if key not in parameters:
                raise ContractViolationError(
                    f"contract on {fn.__qualname__} names unknown parameter {key!r}"
                )
        # Positional lookup table so the per-call path never re-binds the
        # signature: (param name, positional index, spec).
        checkers: List[Tuple[str, int, ArraySpec]] = [
            (key, parameters.index(key), spec) for key, spec in parsed.items()
        ]

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            for key, position, spec in checkers:
                if key in kwargs:
                    _check(fn.__qualname__, f"argument {key!r}", kwargs[key], spec)
                elif position < len(args):
                    _check(fn.__qualname__, f"argument {key!r}", args[position], spec)
            result = fn(*args, **kwargs)
            if returns is not None:
                _check(fn.__qualname__, "return value", result, returns)
            return result

        wrapper.__contract__ = {  # type: ignore[attr-defined]
            "params": dict(parsed),
            "returns": returns,
        }
        return wrapper  # type: ignore[return-value]

    return decorate
