"""Random-number-generator plumbing.

Every randomized routine in this library accepts a ``seed`` argument that
may be ``None`` (fresh entropy), an integer, or an existing
:class:`numpy.random.Generator`.  Centralizing the coercion here keeps the
Monte-Carlo code deterministic under test while staying convenient for
interactive use.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.utils.sync import sanitizer_active

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    An existing generator is returned unchanged (so callers can thread a
    single generator through a pipeline); integers and ``None`` construct a
    fresh PCG64 generator.  Under ``REPRO_SANITIZE=1`` the constructed
    generator is a consumption-accounting shadow over the *same* bit
    generator — identical stream, recorded draws (see
    :mod:`repro.analysis.sanitizer.rng`).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if sanitizer_active():
        from repro.analysis.sanitizer.rng import shadow_rng

        return shadow_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create ``count`` statistically independent generators from one seed.

    Used when an experiment fans out over workers or repeated trials and
    each trial must be reproducible in isolation.
    """
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the generator's own stream.
        children = np.random.SeedSequence(int(seed.integers(2**63))).spawn(count)
    else:
        children = root.spawn(count)
    return [np.random.default_rng(child) for child in children]


def derive_seed(seed: SeedLike, *salt: int) -> Optional[int]:
    """Derive a child integer seed from ``seed`` and integer salt values.

    Deterministic for integer seeds: the same (seed, salt) pair always maps
    to the same child seed.  Returns ``None`` for ``None`` input so fresh
    entropy stays fresh.
    """
    if seed is None:
        return None
    if isinstance(seed, np.random.Generator):
        child = int(seed.integers(2**63))
    else:
        mixed = np.random.SeedSequence(entropy=seed, spawn_key=tuple(salt))
        child = int(mixed.generate_state(1, dtype=np.uint64)[0])
    if sanitizer_active():
        from repro.analysis.sanitizer.rng import note_derived_seed

        note_derived_seed(child)
    return child
