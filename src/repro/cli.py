"""End-user command line: build indexes, run queries, inspect graphs.

This is the operational surface a downstream user drives without
writing Python:

.. code-block:: bash

    # one-off: generate a synthetic graph (or bring your own SNAP file)
    python -m repro.cli generate --family web --n 5000 --out web.txt

    # preprocess once ...
    python -m repro.cli build-index --graph web.txt --index web-index.npz

    # ... then query as often as needed
    python -m repro.cli query --graph web.txt --index web-index.npz --vertex 42 -k 10
    python -m repro.cli pair  --graph web.txt --vertex 42 --other 99
    python -m repro.cli info  --graph web.txt

    # or run the query server and point clients at it (docs/serving.md)
    python -m repro.cli serve --graph web.txt --port 7531
    python -m repro.cli query --remote 127.0.0.1:7531 --vertex 42 -k 10

    # any command takes --metrics {off,summary,json,prom} to dump the
    # observability registry after the run (see docs/observability.md)
    python -m repro.cli query --graph web.txt --vertex 42 --metrics prom

The experiment harness has its own CLI (``python -m
repro.experiments.runner``); this one is for the library's primary use
case, top-k similarity search.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.core.config import SimRankConfig
from repro.core.engine import SimRankEngine
from repro.graph.csr import CSRGraph
from repro.graph.io import read_edge_list, write_edge_list
from repro.utils.memory import human_bytes
from repro.utils.tables import Table, format_seconds

FAMILIES = ("web", "social", "citation", "vote", "community", "random")

METRICS_MODES = ("off", "summary", "json", "prom")


def _emit_metrics(mode: str, snapshot: dict) -> None:
    """Print a registry snapshot in the requested exposition format."""
    if mode == "summary":
        table = Table(["metric", "kind", "value"], title="metrics")
        for row in obs.export.summary_rows(snapshot):
            table.add_row(row)
        print(table.render())
    elif mode == "json":
        sys.stdout.write(obs.export.to_jsonl(snapshot))
    elif mode == "prom":
        sys.stdout.write(obs.export.to_prometheus(snapshot))


def _load_graph(path: str, directed: bool) -> CSRGraph:
    graph = read_edge_list(path, directed=directed)
    assert isinstance(graph, CSRGraph)
    return graph


def _config_from_args(args: argparse.Namespace) -> SimRankConfig:
    base = SimRankConfig.paper() if args.profile == "paper" else SimRankConfig.fast()
    overrides = {}
    if args.c is not None:
        overrides["c"] = args.c
    if args.T is not None:
        overrides["T"] = args.T
    if args.theta is not None:
        overrides["theta"] = args.theta
    return base.with_(**overrides) if overrides else base


def cmd_generate(args: argparse.Namespace) -> int:
    """Write a synthetic graph in one of the paper's structural families."""
    from repro.graph import generators

    makers = {
        "web": lambda: generators.host_block_web_graph(args.n, seed=args.seed),
        "social": lambda: generators.preferential_attachment(args.n, seed=args.seed),
        "citation": lambda: generators.forest_fire(args.n, seed=args.seed),
        "vote": lambda: generators.wiki_vote_like(args.n, seed=args.seed),
        "community": lambda: generators.community_social_graph(args.n, seed=args.seed),
        "random": lambda: generators.erdos_renyi(
            args.n, min(1.0, 8.0 / args.n), seed=args.seed
        ),
    }
    graph = makers[args.family]()
    write_edge_list(graph, args.out, header=f"family={args.family} seed={args.seed}")
    print(f"wrote {graph.n} vertices / {graph.m} edges to {args.out}")
    return 0


def cmd_build_index(args: argparse.Namespace) -> int:
    """Preprocess a graph (Algorithms 3 + 4) and persist the index."""
    graph = _load_graph(args.graph, args.directed)
    engine = SimRankEngine(graph, _config_from_args(args), seed=args.seed)
    engine.preprocess()
    engine.save_index(args.index)
    stats = engine.index.signature_size_stats()
    print(
        f"indexed {graph.n} vertices / {graph.m} edges in "
        f"{format_seconds(engine.preprocess_seconds)}; "
        f"index {human_bytes(engine.index_nbytes())} "
        f"(mean signature {stats['mean']:.1f}) -> {args.index}"
    )
    return 0


def _print_top_k(vertex: int, k: int, items, footer: str) -> None:
    table = Table(["rank", "vertex", "simrank"], title=f"top-{k} for vertex {vertex}")
    for rank, (v, score) in enumerate(items, start=1):
        table.add_row([rank, v, f"{score:.5f}"])
    print(table.render())
    print(footer)


def _cmd_query_remote(args: argparse.Namespace) -> int:
    """Answer the query through a running ``repro serve`` instance."""
    from repro.serve.client import ServeClient

    host, _, port = args.remote.rpartition(":")
    host = host or "127.0.0.1"
    if not port.isdigit():
        print(f"error: --remote must be HOST:PORT, got {args.remote!r}", file=sys.stderr)
        return 2
    with ServeClient(host, int(port)) as client:
        result = client.top_k(args.vertex, k=args.k)
    _print_top_k(
        result.vertex,
        result.k,
        result.items,
        f"(remote {host}:{port}, snapshot epoch {result.epoch})",
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Top-k similarity search against a saved (or freshly built) index."""
    if args.remote:
        return _cmd_query_remote(args)
    if not args.graph:
        print("error: query needs --graph (local) or --remote HOST:PORT",
              file=sys.stderr)
        return 2
    graph = _load_graph(args.graph, args.directed)
    engine = SimRankEngine(graph, _config_from_args(args), seed=args.seed)
    if args.index and Path(args.index).exists():
        engine.load_index(args.index)
    else:
        engine.preprocess()
    result = engine.top_k(args.vertex, k=args.k)
    _print_top_k(
        args.vertex,
        args.k,
        result.items,
        f"({result.stats.candidates} candidates, "
        f"{result.stats.pruned_by_bound} pruned, "
        f"{result.stats.refined} refined, "
        f"{format_seconds(result.stats.elapsed_seconds)})",
    )
    return 0


def cmd_pair(args: argparse.Namespace) -> int:
    """Single-pair s(u, v) by both evaluation methods."""
    graph = _load_graph(args.graph, args.directed)
    engine = SimRankEngine(graph, _config_from_args(args), seed=args.seed)
    mc = engine.single_pair(args.vertex, args.other)
    det = engine.single_pair(args.vertex, args.other, method="deterministic")
    print(f"s({args.vertex}, {args.other}) monte-carlo:    {mc:.6f}")
    print(f"s({args.vertex}, {args.other}) deterministic:  {det:.6f}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the batching, load-shedding query server (docs/serving.md)."""
    import asyncio

    from repro.core.dynamic import DynamicSimRankEngine
    from repro.serve import ServeConfig, SimRankServer

    graph = _load_graph(args.graph, args.directed)
    config = _config_from_args(args)
    print(f"preprocessing {graph.n} vertices / {graph.m} edges ...", flush=True)
    dynamic = DynamicSimRankEngine(graph, config, seed=args.seed)
    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_capacity=args.capacity,
        shed_policy=args.shed_policy,
        max_batch=args.max_batch,
        batch_window=args.batch_window_ms / 1000.0,
        workers=args.serve_workers,
        cache_capacity=args.cache_capacity if args.cache_capacity > 0 else None,
        shards=args.shards,
        flush_pipeline=args.flush_pipeline,
        flush_max_staleness=args.flush_max_staleness,
        flush_max_pending=args.flush_max_pending,
        autotune=args.autotune,
        control_interval=args.control_interval,
        slo_p99_ms=args.slo_p99_ms,
    )
    server = SimRankServer(dynamic, serve_config)

    async def _run() -> None:
        port = await server.start()
        backend = (
            f"{serve_config.shards}-shard scatter-gather"
            if serve_config.shards
            else "single-process"
        )
        autotune = (
            f"; autotune on (SLO p99 {serve_config.slo_p99_ms:g} ms)"
            if serve_config.autotune
            else ""
        )
        print(
            f"serving on {serve_config.host}:{port} "
            f"({backend}; NDJSON protocol; HTTP GET /healthz /metrics{autotune})",
            flush=True,
        )
        await server.wait_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Offline knob tuning: hill-climb P/Q + batch window, emit the sidecar.

    Starts from the profile's static defaults, keeps only improving
    moves on the p99-at-fixed-accuracy objective, and writes a
    ``BENCH_tune.json`` (schema'd via :mod:`repro.utils.bench`) with
    the defaults-vs-tuned comparison per workload shape.
    """
    from repro.control.offline import WORKLOAD_SHAPES, tune_offline
    from repro.graph.generators import copying_web_graph
    from repro.utils.bench import write_sidecar

    shapes = tuple(s.strip() for s in args.shapes.split(",") if s.strip())
    unknown = set(shapes) - set(WORKLOAD_SHAPES)
    if unknown:
        print(
            f"error: unknown workload shapes {sorted(unknown)}; "
            f"choose from {WORKLOAD_SHAPES}",
            file=sys.stderr,
        )
        return 2
    if args.graph:
        graph = _load_graph(args.graph, args.directed)
    else:
        n = args.n if args.n is not None else (150 if args.quick else 400)
        graph = copying_web_graph(n, seed=args.seed)
        print(f"tuning against a generated web graph (n={graph.n}, m={graph.m})")
    payload = tune_offline(
        graph,
        base=_config_from_args(args),
        shapes=shapes,
        quick=args.quick,
        seed=args.seed,
        include_serving=args.tune_serve,
        progress=lambda msg: print(msg, flush=True),
    )
    write_sidecar(args.out, "tune", payload)
    table = Table(
        ["workload", "default p99 (ms)", "tuned p99 (ms)", "accuracy", "knobs"],
        title="offline tune",
    )
    for shape, entry in payload["workloads"].items():
        knobs = ", ".join(
            f"{name}={value:g}" for name, value in sorted(entry["knobs"].items())
        )
        table.add_row([
            shape,
            f"{entry['default']['p99_ms']:.2f}",
            f"{entry['tuned']['p99_ms']:.2f}",
            f"{entry['tuned']['accuracy']:.3f}",
            knobs,
        ])
    print(table.render())
    print(f"wrote {args.out}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the project's static-analysis rules (docs/static-analysis.md)."""
    from repro.analysis.cli import main as lint_main

    argv = list(args.paths)
    if args.rules:
        argv += ["--select", args.rules]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.root:
        argv += ["--root", args.root]
    if args.flow:
        argv.append("--flow")
    if args.output_format != "text":
        argv += ["--format", args.output_format]
    if args.show_suppressed:
        argv.append("--show-suppressed")
    if args.no_cache:
        argv.append("--no-cache")
    if args.explain:
        argv.append("--explain")
    return lint_main(argv)


def cmd_info(args: argparse.Namespace) -> int:
    """Structural summary of a graph file."""
    from repro.graph.stats import average_distance, degree_summary, reciprocity

    graph = _load_graph(args.graph, args.directed)
    in_summary = degree_summary(graph, "in")
    table = Table(["property", "value"], title=str(Path(args.graph).name))
    table.add_row(["vertices", graph.n])
    table.add_row(["edges", graph.m])
    table.add_row(["mean in-degree", f"{in_summary.mean:.2f}"])
    table.add_row(["max in-degree", in_summary.maximum])
    table.add_row(["dead-end vertices", in_summary.zeros])
    table.add_row(["reciprocity", f"{reciprocity(graph):.3f}"])
    table.add_row(
        ["avg distance (sampled)", f"{average_distance(graph, samples=30, seed=0):.2f}"]
    )
    table.add_row(["adjacency bytes", human_bytes(graph.nbytes())])
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Top-k SimRank similarity search (SIGMOD 2014 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(
        p: argparse.ArgumentParser,
        needs_graph: bool = True,
        graph_required: bool = True,
    ) -> None:
        if needs_graph:
            p.add_argument(
                "--graph",
                required=graph_required,
                default=None,
                help="edge-list file (.txt/.gz)",
            )
            p.add_argument(
                "--undirected",
                dest="directed",
                action="store_false",
                help="store each edge in both directions",
            )
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--profile", choices=("fast", "paper"), default="fast")
        p.add_argument("--c", type=float, default=None, help="decay factor")
        p.add_argument("--T", type=int, default=None, help="series length")
        p.add_argument("--theta", type=float, default=None, help="score threshold")
        p.add_argument(
            "--metrics",
            choices=METRICS_MODES,
            default="off",
            help="collect pipeline metrics and print them after the command",
        )

    p_gen = sub.add_parser("generate", help="write a synthetic graph")
    p_gen.add_argument("--family", choices=FAMILIES, default="web")
    p_gen.add_argument("--n", type=int, default=1000)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("--out", required=True)
    p_gen.add_argument("--metrics", choices=METRICS_MODES, default="off",
                       help=argparse.SUPPRESS)
    p_gen.set_defaults(fn=cmd_generate)

    p_build = sub.add_parser("build-index", help="preprocess and save the index")
    common(p_build)
    p_build.add_argument("--index", required=True, help="output .npz path")
    p_build.set_defaults(fn=cmd_build_index)

    p_query = sub.add_parser("query", help="top-k similarity search")
    common(p_query, graph_required=False)
    p_query.add_argument("--index", default=None, help="saved index (.npz)")
    p_query.add_argument("--vertex", type=int, required=True)
    p_query.add_argument("-k", type=int, default=10)
    p_query.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT",
        help="answer through a running `repro serve` instead of a local engine",
    )
    p_query.set_defaults(fn=cmd_query)

    p_serve = sub.add_parser("serve", help="run the batching query server")
    common(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7531,
                         help="listening port (0 = kernel-assigned)")
    p_serve.add_argument("--capacity", type=int, default=256,
                         help="admission queue bound before shedding")
    p_serve.add_argument("--shed-policy", choices=("reject-new", "drop-oldest"),
                         default="reject-new")
    p_serve.add_argument("--max-batch", type=int, default=16,
                         help="top-k requests grouped per micro-batch")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="how long the batcher lingers to fill a batch")
    p_serve.add_argument("--serve-workers", type=int, default=4,
                         help="executor threads answering queries")
    p_serve.add_argument("--shards", type=int, default=0,
                         help="serve through N sharded worker processes "
                              "(0 = single-process backend)")
    p_serve.add_argument("--cache-capacity", type=int, default=1024,
                         help="per-snapshot LRU result cache size (0 disables)")
    p_serve.add_argument("--flush-pipeline", action="store_true",
                         help="absorb staged edge edits on a background "
                              "flusher thread instead of per-request flushes "
                              "(docs/dynamic.md)")
    p_serve.add_argument("--flush-max-staleness", type=float, default=0.2,
                         help="seconds a staged edit may wait before the "
                              "pipeline flushes")
    p_serve.add_argument("--flush-max-pending", type=int, default=1024,
                         help="staged edits that force a flush and throttle "
                              "writers")
    p_serve.add_argument("--autotune", action="store_true",
                         help="run the feedback controller that adapts batch "
                              "and walk-budget knobs toward the SLO "
                              "(docs/tuning.md)")
    p_serve.add_argument("--control-interval", type=float, default=1.0,
                         help="seconds between controller ticks")
    p_serve.add_argument("--slo-p99-ms", type=float, default=250.0,
                         help="guarded p99 latency objective for --autotune")
    p_serve.set_defaults(fn=cmd_serve)

    p_tune = sub.add_parser(
        "tune",
        help="offline hill-climb of index (P/Q) and batch-window knobs",
    )
    common(p_tune, graph_required=False)
    p_tune.add_argument("--out", default="BENCH_tune.json",
                        help="sidecar output path (default: BENCH_tune.json)")
    p_tune.add_argument("--quick", action="store_true",
                        help="CI smoke mode: fewer queries, shallower climb")
    p_tune.add_argument("--n", type=int, default=None,
                        help="generated seed-graph size when --graph is "
                             "omitted (default 150 quick / 400 full)")
    p_tune.add_argument("--shapes", default="uniform,hub",
                        help="comma-separated workload shapes to tune")
    p_tune.add_argument("--no-serve", dest="tune_serve", action="store_false",
                        help="skip the live-server batch-window measurement")
    p_tune.set_defaults(fn=cmd_tune)

    p_pair = sub.add_parser("pair", help="single-pair SimRank score")
    common(p_pair)
    p_pair.add_argument("--vertex", type=int, required=True)
    p_pair.add_argument("--other", type=int, required=True)
    p_pair.set_defaults(fn=cmd_pair)

    p_info = sub.add_parser("info", help="graph structural summary")
    common(p_info)
    p_info.set_defaults(fn=cmd_info)

    p_lint = sub.add_parser(
        "lint", help="run the project-specific static-analysis rules R1-R16"
    )
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--select", "--rules", dest="rules", default=None,
                        metavar="R1,R2,...",
                        help="comma-separated rule ids to run "
                        "(--rules is the legacy spelling)")
    p_lint.add_argument("--ignore", default=None, metavar="R1,R2,...",
                        help="comma-separated rule ids to drop from the "
                        "selected set")
    p_lint.add_argument("--root", default=None, metavar="DIR",
                        help="directory findings are rendered relative to")
    p_lint.add_argument("--flow", action="store_true",
                        help="also run the interprocedural flow rules R6-R16")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", dest="output_format",
                        help="output format")
    p_lint.add_argument("--show-suppressed", action="store_true",
                        help="also report findings waived by `# repro: noqa`")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="bypass the .repro-lint-cache/ incremental cache")
    p_lint.add_argument("--explain", action="store_true",
                        help="list the registered rules and exit")
    p_lint.set_defaults(fn=cmd_lint)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    metrics_mode = getattr(args, "metrics", "off")
    if metrics_mode == "off":
        return int(args.fn(args))
    was_enabled = obs.enabled()
    obs.enable()
    try:
        # Collect into a private registry so repeated in-process runs
        # (tests, notebooks) each report exactly their own command.
        with obs.collecting() as registry:
            code = int(args.fn(args))
        _emit_metrics(metrics_mode, registry.snapshot())
    finally:
        if not was_enabled:
            obs.disable()
    return code


if __name__ == "__main__":
    sys.exit(main())
