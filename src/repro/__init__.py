"""repro — reproduction of "Scalable Similarity Search for SimRank"
(Kusumoto, Maehara, Kawarabayashi; SIGMOD 2014).

Quickstart::

    from repro import SimRankEngine, SimRankConfig
    from repro.graph.generators import copying_web_graph

    graph = copying_web_graph(1000, seed=42)
    engine = SimRankEngine(graph, SimRankConfig.fast(), seed=42).preprocess()
    for vertex, score in engine.top_k(0, k=10).items:
        print(vertex, score)

Package layout:

- :mod:`repro.graph` — graph storage (CSR), generators, I/O, traversal;
- :mod:`repro.core` — the paper's algorithms (linear formulation,
  Monte-Carlo estimators, L1/L2 bounds, candidate index, query engine);
- :mod:`repro.baselines` — Jeh–Widom, Lizorkin partial sums,
  Fogaras–Rácz fingerprints, Yu et al. all-pairs;
- :mod:`repro.experiments` — harness regenerating every table and
  figure of the paper's evaluation.
"""

from repro.core.config import SimRankConfig
from repro.core.engine import SimRankEngine
from repro.core.query import TopKResult
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraphBuilder

__version__ = "1.0.0"

__all__ = [
    "CSRGraph",
    "DiGraphBuilder",
    "SimRankConfig",
    "SimRankEngine",
    "TopKResult",
    "__version__",
]
