"""P-Rank: the in/out-link generalisation of SimRank [38].

Zhao, Han & Sun's P-Rank scores structural similarity from *both* link
directions:

    s(u, v) = λ · c · avg_{u'∈I(u), v'∈I(v)} s(u', v')
            + (1-λ) · c · avg_{u'∈O(u), v'∈O(v)} s(u', v'),   s(u, u) = 1,

with λ = 1 recovering SimRank exactly and λ = 0 a "reverse SimRank" on
out-links.  The paper's related-work section cites it as one of the
similarity measures in SimRank's family; implementing it doubles as a
differential test for our SimRank machinery (the λ = 1 slice must agree
with :func:`repro.core.exact.exact_simrank`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exact import iterations_for_tolerance
from repro.graph.csr import CSRGraph
from repro.utils.validation import check_fraction, check_probability


def prank_matrix(
    graph: CSRGraph,
    c: float = 0.6,
    lam: float = 0.5,
    iterations: Optional[int] = None,
    tol: float = 1e-7,
) -> np.ndarray:
    """All-pairs P-Rank by fixed-point iteration (dense; small graphs).

    ``lam`` is the in-link weight λ; vertices lacking links in a
    direction contribute zero from that direction (the same dead-end
    convention as SimRank).
    """
    check_fraction("c", c)
    check_probability("lam", lam)
    k = iterations if iterations is not None else iterations_for_tolerance(c, tol)
    P_in = graph.transition_matrix()
    P_out = graph.reverse().transition_matrix()
    S = np.eye(graph.n)
    for _ in range(k):
        in_part = P_in.T @ (P_in.T @ S.T).T if lam > 0 else 0.0
        out_part = P_out.T @ (P_out.T @ S.T).T if lam < 1 else 0.0
        S = c * (lam * in_part + (1.0 - lam) * out_part)
        np.fill_diagonal(S, 1.0)
    return S


def prank_single_source(
    graph: CSRGraph,
    u: int,
    c: float = 0.6,
    lam: float = 0.5,
    iterations: Optional[int] = None,
) -> np.ndarray:
    """Row u of the P-Rank matrix."""
    return prank_matrix(graph, c=c, lam=lam, iterations=iterations)[int(u)]
