"""Classical link-based similarity measures (the paper's related work).

The introduction motivates SimRank against one-step measures —
bibliographic coupling [16] and co-citation [30] — and mentions the
P-Rank generalisation [38].  This package implements those comparators
so the ranking-quality experiment can reproduce the paper's qualitative
claim: SimRank's multi-step evidence finds similar vertices that
one-step neighborhood overlap misses.
"""

from repro.similarity.neighborhood import (
    bibliographic_coupling,
    co_citation,
    cosine_in_neighbors,
    jaccard_in_neighbors,
)
from repro.similarity.prank import prank_matrix
from repro.similarity.simrankpp import simrankpp_matrix

__all__ = [
    "bibliographic_coupling",
    "co_citation",
    "cosine_in_neighbors",
    "jaccard_in_neighbors",
    "prank_matrix",
    "simrankpp_matrix",
]
