"""SimRank++ evidence weighting (Antonellis et al. [3]).

SimRank++ observes that plain SimRank can score a pair sharing *one*
in-neighbor higher than a pair sharing many (the 1/(|I(u)||I(v)|)
normalisation).  It multiplies SimRank by an *evidence factor*

    evidence(u, v) = Σ_{i=1}^{|I(u) ∩ I(v)|} 2^{-i} = 1 - 2^{-|I(u) ∩ I(v)|},

which saturates toward 1 as the common in-neighborhood grows.  The
paper cites SimRank++ as one of the successful SimRank applications
(query rewriting on click graphs); we implement the evidence layer so
downstream users can combine it with any of our SimRank backends.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.exact import exact_simrank
from repro.errors import VertexError
from repro.graph.csr import CSRGraph


def evidence_factor(common_in_neighbors: int) -> float:
    """``1 - 2^{-k}`` for ``k`` common in-neighbors (0 -> no evidence)."""
    if common_in_neighbors < 0:
        raise ValueError(
            f"common neighbor count must be nonnegative, got {common_in_neighbors}"
        )
    if common_in_neighbors >= 64:
        return 1.0
    return 1.0 - 2.0**-common_in_neighbors


def evidence_matrix(graph: CSRGraph) -> np.ndarray:
    """Dense n×n evidence factors (small graphs; ground-truth use)."""
    n = graph.n
    in_sets = [set(graph.in_neighbors(v).tolist()) for v in range(n)]
    result = np.zeros((n, n))
    for u in range(n):
        for v in range(u, n):
            factor = evidence_factor(len(in_sets[u] & in_sets[v]))
            result[u, v] = factor
            result[v, u] = factor
    return result


def simrankpp_matrix(
    graph: CSRGraph,
    c: float = 0.6,
    iterations: Optional[int] = None,
    S: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Evidence-weighted SimRank matrix: ``evidence ∘ S`` (Hadamard).

    A precomputed SimRank matrix ``S`` may be passed to reuse the fixed
    point; the diagonal stays 1 (a vertex is fully similar to itself
    regardless of evidence).
    """
    base = S if S is not None else exact_simrank(graph, c=c, iterations=iterations)
    weighted = evidence_matrix(graph) * base
    np.fill_diagonal(weighted, 1.0)
    return weighted


def simrankpp_single_source(
    graph: CSRGraph,
    u: int,
    simrank_scores: np.ndarray,
) -> np.ndarray:
    """Weight a single-source SimRank vector by per-pair evidence.

    ``simrank_scores`` can come from any backend — the exact matrix row,
    the deterministic series, or the engine's Monte-Carlo estimates —
    making this the composition point for large graphs (evidence only
    needs u's in-neighborhood and one hop).
    """
    u = int(u)
    if not 0 <= u < graph.n:
        raise VertexError(u, graph.n)
    if simrank_scores.shape != (graph.n,):
        raise ValueError(
            f"expected scores of shape ({graph.n},), got {simrank_scores.shape}"
        )
    in_u = set(graph.in_neighbors(u).tolist())
    common: Dict[int, int] = {}
    for citer in in_u:
        for v in graph.out_neighbors(citer):
            v = int(v)
            if v != u:
                common[v] = common.get(v, 0) + 1
    weighted = np.zeros(graph.n)
    for v, k in common.items():
        weighted[v] = evidence_factor(k) * simrank_scores[v]
    weighted[u] = 1.0
    return weighted
