"""One-step neighborhood similarity measures.

These are the classical comparators the paper's introduction positions
SimRank against:

- **co-citation** (Small 1973): #vertices linking to both u and v —
  the size of the shared in-neighborhood;
- **bibliographic coupling** (Kessler 1963): #vertices both u and v
  link to — the shared out-neighborhood;
- normalized variants (Jaccard / cosine of the in-neighbor sets), which
  remove the raw-count degree bias and are the strongest one-step
  baselines in practice.

All functions are single-source: given u they score every vertex with a
nonzero overlap, which is the sparse output a recommender actually
consumes (and mirrors the paper's top-k problem statement).
"""

from __future__ import annotations

import math
from typing import Dict


from repro.errors import VertexError
from repro.graph.csr import CSRGraph


def _check(graph: CSRGraph, u: int) -> int:
    u = int(u)
    if not 0 <= u < graph.n:
        raise VertexError(u, graph.n)
    return u


def co_citation(graph: CSRGraph, u: int) -> Dict[int, int]:
    """``|I(u) ∩ I(v)|`` for every v sharing an in-neighbor with u."""
    u = _check(graph, u)
    scores: Dict[int, int] = {}
    for citer in graph.in_neighbors(u):
        for v in graph.out_neighbors(int(citer)):
            v = int(v)
            if v != u:
                scores[v] = scores.get(v, 0) + 1
    return scores


def bibliographic_coupling(graph: CSRGraph, u: int) -> Dict[int, int]:
    """``|O(u) ∩ O(v)|`` for every v sharing an out-neighbor with u."""
    u = _check(graph, u)
    scores: Dict[int, int] = {}
    for cited in graph.out_neighbors(u):
        for v in graph.in_neighbors(int(cited)):
            v = int(v)
            if v != u:
                scores[v] = scores.get(v, 0) + 1
    return scores


def jaccard_in_neighbors(graph: CSRGraph, u: int) -> Dict[int, float]:
    """``|I(u) ∩ I(v)| / |I(u) ∪ I(v)|`` over co-cited vertices."""
    u = _check(graph, u)
    overlap = co_citation(graph, u)
    deg_u = graph.in_degree(u)
    scores: Dict[int, float] = {}
    for v, shared in overlap.items():
        union = deg_u + graph.in_degree(v) - shared
        if union > 0:
            scores[v] = shared / union
    return scores


def cosine_in_neighbors(graph: CSRGraph, u: int) -> Dict[int, float]:
    """``|I(u) ∩ I(v)| / sqrt(|I(u)| |I(v)|)`` over co-cited vertices."""
    u = _check(graph, u)
    overlap = co_citation(graph, u)
    deg_u = graph.in_degree(u)
    scores: Dict[int, float] = {}
    for v, shared in overlap.items():
        denominator = math.sqrt(deg_u * graph.in_degree(v))
        if denominator > 0:
            scores[v] = shared / denominator
    return scores


def top_k_from_scores(scores: Dict[int, float], k: int) -> list:
    """Best-k (vertex, score) pairs from a sparse score dict."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))[:k]
