"""Project loading and rule dispatch for ``repro lint``.

A :class:`Project` is the set of parsed :class:`SourceFile` objects the
rules operate on.  Each rule runs only over the files its invariant
governs (:data:`DEFAULT_SCOPES`): lock discipline is a serve-layer
contract, the RNG rule governs the Monte-Carlo code, the hot-path obs
guard applies to the three query-path modules.  Scope patterns are
:mod:`fnmatch` globs matched against the repo-relative posix path, with
an implicit ``*/`` prefix so the same patterns work from any checkout
root (and from test fixtures that mimic the layout).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, all_rules
from repro.analysis.source import SourceFile, load_source

__all__ = ["DEFAULT_SCOPES", "Project", "discover_files", "run_lint", "scope_match"]

#: rule id -> path globs the rule applies to (posix, repo-relative).
DEFAULT_SCOPES: Dict[str, Tuple[str, ...]] = {
    "R1": ("serve/*.py", "core/dynamic.py", "workloads.py"),
    "R2": ("core/*.py", "serve/*.py", "workloads.py"),
    "R3": ("core/*.py", "baselines/*.py", "graph/generators.py"),
    "R4": ("core/query.py", "core/walks.py", "core/montecarlo.py"),
    "R5": ("*.py",),
}

#: directories never worth parsing.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "node_modules", "build", "dist"}


@dataclass
class Project:
    """Every parsed source file of one lint invocation."""

    root: Path
    sources: List[SourceFile] = field(default_factory=list)

    def by_rel(self, rel: str) -> Optional[SourceFile]:
        for source in self.sources:
            if source.rel == rel:
                return source
        return None


def scope_match(rel: str, patterns: Sequence[str]) -> bool:
    """Whether a repo-relative path falls inside a rule's scope."""
    path = rel.replace("\\", "/")
    for pattern in patterns:
        if fnmatch.fnmatch(path, pattern) or fnmatch.fnmatch(path, "*/" + pattern):
            return True
    return False


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
    # De-duplicate while keeping order (a file given twice, or both a dir
    # and a file inside it).
    seen = set()
    unique: List[Path] = []
    for path in found:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def load_project(paths: Iterable[Path], root: Optional[Path] = None) -> Project:
    root = root or Path.cwd()
    project = Project(root=root)
    for path in discover_files(paths):
        project.sources.append(load_source(path, root))
    return project


def run_lint(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    only: Optional[Iterable[str]] = None,
    scopes: Optional[Dict[str, Tuple[str, ...]]] = None,
) -> List[Finding]:
    """Run the project linter and return sorted, unsuppressed findings.

    ``only`` restricts to a set of rule ids; ``scopes`` overrides
    :data:`DEFAULT_SCOPES` (useful in tests to point one rule at a
    fixture file regardless of its name).
    """
    project = load_project(paths, root)
    scope_map = DEFAULT_SCOPES if scopes is None else scopes
    active = list(all_rules()) if rules is None else list(rules)
    if only is not None:
        wanted = set(only)
        active = [rule for rule in active if rule.id in wanted]

    findings: List[Finding] = []
    for source in project.sources:
        if source.syntax_error is not None:
            exc = source.syntax_error
            findings.append(
                Finding(
                    rule="R0",
                    path=source.rel,
                    line=exc.lineno or 0,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        for line in source.suppressions.missing_reasons():
            findings.append(
                Finding(
                    rule="R0",
                    path=source.rel,
                    line=line,
                    col=0,
                    message=(
                        "`# repro: noqa` without a `-- reason` tail — waivers "
                        "must record why they are safe"
                    ),
                )
            )

    for rule in active:
        rule.prepare(project)
    for rule in active:
        patterns = scope_map.get(rule.id, ("*.py",))
        for source in project.sources:
            if source.syntax_error is not None:
                continue
            if not scope_match(source.rel, patterns):
                continue
            for finding in rule.check(project, source):
                if not source.suppressed(finding):
                    findings.append(finding)

    return sorted(findings, key=Finding.sort_key)
