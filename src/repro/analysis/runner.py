"""Project loading and rule dispatch for ``repro lint``.

A :class:`Project` is the set of parsed :class:`SourceFile` objects the
rules operate on.  Each rule runs only over the files its invariant
governs (:data:`DEFAULT_SCOPES`): lock discipline is a serve-layer
contract, the RNG rule governs the Monte-Carlo code, the hot-path obs
guard applies to the three query-path modules.  Scope patterns are
:mod:`fnmatch` globs matched against the repo-relative posix path, with
an implicit ``*/`` prefix so the same patterns work from any checkout
root (and from test fixtures that mimic the layout).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.cache import LintCache
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, all_rules
from repro.analysis.source import SourceFile, load_source

__all__ = [
    "DEFAULT_SCOPES",
    "LintReport",
    "Project",
    "discover_files",
    "run_analysis",
    "run_lint",
    "scope_match",
]

#: rule id -> path globs the rule applies to (posix, repo-relative).
DEFAULT_SCOPES: Dict[str, Tuple[str, ...]] = {
    "R1": ("serve/*.py", "core/dynamic.py", "workloads.py"),
    "R2": ("core/*.py", "serve/*.py", "workloads.py", "experiments/*.py"),
    "R3": (
        "core/*.py",
        "baselines/*.py",
        "graph/generators.py",
        "experiments/*.py",
    ),
    "R4": ("core/query.py", "core/walks.py", "core/montecarlo.py"),
    "R5": ("*.py",),
    # Flow rules (R6-R12) are whole-program: prepare() analyses every
    # parsed file; the scope only controls where findings may land.
    "R6": ("*.py",),
    "R7": ("*.py",),
    "R8": ("*.py",),
    "R9": ("*.py",),
    "R10": ("*.py",),
    # The serve layer speaks its own NDJSON ``op`` protocol; the pipe
    # rule governs only the shard boundary.
    "R11": ("shard/*.py",),
    "R12": ("*.py",),
    "R13": ("*.py",),
    # Index-dtype discipline governs the CSR/walk storage layers and the
    # serialization boundary; baselines/ compresses to int32 by design.
    "R14": ("core/*.py", "graph/*.py", "shard/codec.py"),
    "R15": ("*.py",),
    "R16": ("*.py",),
}

#: directories never worth parsing.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "node_modules", "build", "dist"}


@dataclass
class Project:
    """Every parsed source file of one lint invocation."""

    root: Path
    sources: List[SourceFile] = field(default_factory=list)

    def by_rel(self, rel: str) -> Optional[SourceFile]:
        for source in self.sources:
            if source.rel == rel:
                return source
        return None


def scope_match(rel: str, patterns: Sequence[str]) -> bool:
    """Whether a repo-relative path falls inside a rule's scope."""
    path = rel.replace("\\", "/")
    for pattern in patterns:
        if fnmatch.fnmatch(path, pattern) or fnmatch.fnmatch(path, "*/" + pattern):
            return True
    return False


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    found.append(candidate)
        elif path.suffix == ".py":
            found.append(path)
    # De-duplicate while keeping order (a file given twice, or both a dir
    # and a file inside it).
    seen = set()
    unique: List[Path] = []
    for path in found:
        key = path.resolve()
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _rel_of(path: Path, root: Path) -> str:
    """The repo-relative path findings render (mirrors ``load_source``)."""
    try:
        return str(path.resolve().relative_to(root.resolve()))
    except ValueError:
        return str(path)


def load_project(paths: Iterable[Path], root: Optional[Path] = None) -> Project:
    root = root or Path.cwd()
    project = Project(root=root)
    for path in discover_files(paths):
        project.sources.append(load_source(path, root))
    return project


@dataclass
class LintReport:
    """Everything one lint invocation learned.

    ``findings`` is what the CLI prints and gates on (stale-noqa R0
    findings included); ``suppressed`` is what per-line waivers hid
    (``--show-suppressed``); ``stale`` is the subset of ``findings``
    flagging noqa directives that suppressed nothing.
    """

    findings: List[Finding]
    suppressed: List[Finding]
    stale: List[Finding]


def run_analysis(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    only: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    scopes: Optional[Dict[str, Tuple[str, ...]]] = None,
    flow: bool = False,
    cache: Optional[LintCache] = None,
) -> LintReport:
    """Run the project linter and return the full :class:`LintReport`.

    ``only`` restricts to a set of rule ids and ``ignore`` drops ids
    from whatever set would otherwise run (``--select``/``--ignore`` on
    the CLI); ``scopes`` overrides :data:`DEFAULT_SCOPES` (useful in
    tests to point one rule at a fixture file regardless of its name);
    ``flow`` adds the whole-program rules R6-R16
    (:func:`repro.analysis.flow.flow_rules`).  ``cache`` enables the
    content-keyed incremental store
    (:class:`repro.analysis.cache.LintCache`); it is ignored when
    ``rules`` passes custom rule objects, which cannot be content-keyed.
    """
    from repro.analysis.flow import flow_rules

    root = root or Path.cwd()
    only = list(only) if only is not None else None
    ignore = list(ignore) if ignore is not None else None
    scope_map = DEFAULT_SCOPES if scopes is None else scopes
    if rules is not None:
        cache = None

    files = discover_files(paths)
    sha_by_rel: Dict[str, str] = {}
    invocation_key: Optional[str] = None
    if cache is not None:
        try:
            for path in files:
                rel = _rel_of(path, root)
                sha_by_rel[rel] = LintCache.file_sha(
                    path.read_text(encoding="utf-8")
                )
        except (OSError, UnicodeDecodeError):
            cache = None  # unreadable tree: run uncached, let load_source report
        else:
            scopes_sig = repr(sorted(scope_map.items()))
            invocation_key = LintCache.invocation_key(
                sorted(sha_by_rel.items()), flow, only, scopes_sig, ignore
            )
            hit = cache.load_report(invocation_key)
            if hit is not None:
                return LintReport(
                    findings=hit["findings"],
                    suppressed=hit["suppressed"],
                    stale=hit["stale"],
                )

    project = Project(root=root)
    for path in files:
        project.sources.append(load_source(path, root))
    if rules is None:
        active = list(all_rules())
        if flow:
            active.extend(flow_rules())
    else:
        active = list(rules)
    # Stale-noqa detection needs the full default rule set: under a
    # restricted run, a waiver for an unrun rule is dormant, not stale.
    full_run = rules is None and only is None and not ignore
    if only is not None:
        wanted = set(only)
        active = [rule for rule in active if rule.id in wanted]
    if ignore is not None:
        dropped = set(ignore)
        active = [rule for rule in active if rule.id not in dropped]

    findings: List[Finding] = []
    suppressed: List[Finding] = []
    #: rel -> lines whose noqa directive suppressed at least one finding.
    used_waivers: Dict[str, set] = {}
    for source in project.sources:
        if source.syntax_error is not None:
            exc = source.syntax_error
            findings.append(
                Finding(
                    rule="R0",
                    path=source.rel,
                    line=exc.lineno or 0,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        for line in source.suppressions.missing_reasons():
            findings.append(
                Finding(
                    rule="R0",
                    path=source.rel,
                    line=line,
                    col=0,
                    message=(
                        "`# repro: noqa` without a `-- reason` tail — waivers "
                        "must record why they are safe"
                    ),
                )
            )

    for rule in active:
        rule.prepare(project)
    for rule in active:
        patterns = scope_map.get(rule.id, ("*.py",))
        # Rules with no cross-file prepare phase depend on one file's
        # bytes alone, so their raw check output is per-file cacheable.
        per_file = cache is not None and type(rule).prepare is Rule.prepare
        for source in project.sources:
            if source.syntax_error is not None:
                continue
            if not scope_match(source.rel, patterns):
                continue
            raw: Optional[List[Finding]] = None
            entry_key: Optional[str] = None
            if per_file and source.rel in sha_by_rel:
                entry_key = LintCache.perfile_key(
                    rule.id, source.rel, sha_by_rel[source.rel]
                )
                raw = cache.load_file_findings(entry_key)
            if raw is None:
                raw = list(rule.check(project, source))
                if entry_key is not None:
                    cache.store_file_findings(entry_key, raw)
            for finding in raw:
                if source.suppressed(finding):
                    suppressed.append(finding)
                    used_waivers.setdefault(source.rel, set()).add(finding.line)
                else:
                    findings.append(finding)

    stale: List[Finding] = []
    if full_run:
        active_ids = {rule.id for rule in active}
        for source in project.sources:
            if source.syntax_error is not None:
                continue
            for line in source.suppressions.lines():
                if line in used_waivers.get(source.rel, ()):
                    continue
                named = source.suppressions.rules_on(line)
                if named is not None and not named <= active_ids:
                    continue  # waives a rule that did not run (e.g. R6-R8 without --flow)
                stale.append(
                    Finding(
                        rule="R0",
                        path=source.rel,
                        line=line,
                        col=0,
                        message=(
                            "stale `# repro: noqa` — it suppresses nothing on "
                            "this line; remove the waiver"
                        ),
                    )
                )
        findings.extend(stale)

    report = LintReport(
        findings=sorted(findings, key=Finding.sort_key),
        suppressed=sorted(suppressed, key=Finding.sort_key),
        stale=sorted(stale, key=Finding.sort_key),
    )
    if cache is not None and invocation_key is not None:
        cache.store_report(
            invocation_key, report.findings, report.suppressed, report.stale
        )
        cache.flush()
    return report


def run_lint(
    paths: Iterable[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    only: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    scopes: Optional[Dict[str, Tuple[str, ...]]] = None,
    flow: bool = False,
) -> List[Finding]:
    """Run the project linter and return sorted, unsuppressed findings.

    Thin wrapper over :func:`run_analysis` for callers that only need
    the gating finding list.
    """
    return run_analysis(
        paths, root=root, rules=rules, only=only, ignore=ignore,
        scopes=scopes, flow=flow,
    ).findings
