"""R5 — dtype/shape contracts on public numpy kernels.

:func:`repro.utils.contracts.contract` declares, as string literals in
the decorator, which parameters of a kernel must be ``int64``/
``float64``/... arrays.  Because the declaration is a literal, this rule
can read it statically and

1. validate every declaration — specs parse, named parameters exist,
   specs are literals (a computed spec would be invisible to both this
   rule and code review);
2. require a contract on the designated hot kernels
   (:data:`REQUIRED_CONTRACTS`) — the functions whose payload crosses
   module boundaries and whose dtype bugs are silent;
3. cross-validate call sites: an argument built with an explicit dtype
   (``np.zeros(n, dtype=np.int32)``, ``x.astype("float32")``) passed
   where the contract demands a different dtype is reported at the call,
   before the runtime check would trip.

Call-site matching is by function name and is skipped when two
contracted functions share a name (ambiguous) — precision over recall.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain
from repro.errors import ContractViolationError
from repro.utils.contracts import KNOWN_DTYPES, ArraySpec, parse_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["ContractRule", "REQUIRED_CONTRACTS"]

#: rel-path suffix -> function/method names that must carry @contract.
REQUIRED_CONTRACTS: Dict[str, Tuple[str, ...]] = {
    "core/walks.py": (
        "step",
        "step_given",
        "walk_matrix",
        "walk_matrix_seeded",
        "walk_matrix_multi",
        "segment_collisions",
        "segment_self_collisions",
    ),
    "core/bounds.py": ("compute_gamma",),
}

#: numpy constructors whose ``dtype=`` keyword states the result dtype.
_NP_CONSTRUCTORS = frozenset(
    {"array", "asarray", "zeros", "ones", "empty", "full", "arange", "full_like"}
)


@dataclass
class ContractDecl:
    """One ``@contract``-decorated function, as declared in source."""

    rel: str
    line: int
    qualname: str
    #: parameter names in order, ``self``/``cls`` stripped.
    params: Tuple[str, ...]
    specs: Dict[str, ArraySpec] = field(default_factory=dict)

    def spec_for(self, index: Optional[int], keyword: Optional[str]) -> Optional[ArraySpec]:
        name = keyword
        if name is None and index is not None and index < len(self.params):
            name = self.params[index]
        if name is None:
            return None
        return self.specs.get(name)


def _decorator_is_contract(node: ast.expr) -> Optional[ast.Call]:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id == "contract":
        return node
    if isinstance(func, ast.Attribute) and func.attr == "contract":
        return node
    return None


def _static_dtype(node: ast.expr) -> Optional[str]:
    """Canonical dtype name of a dtype expression, when it is a literal
    (``np.int64``, ``"float32"``, a bare imported ``int64``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in KNOWN_DTYPES else None
    chain = attribute_chain(node)
    if chain is not None and chain[-1] in KNOWN_DTYPES:
        return chain[-1]
    return None


def _argument_dtype(node: ast.expr) -> Optional[str]:
    """Statically known dtype of a call argument, if any.

    Recognises ``np.<ctor>(..., dtype=<literal>)`` and
    ``<expr>.astype(<literal>)``; anything else is unknown (None).
    """
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "astype":
        if node.args:
            return _static_dtype(node.args[0])
        for kw in node.keywords:
            if kw.arg == "dtype":
                return _static_dtype(kw.value)
        return None
    chain = attribute_chain(func)
    name = chain[-1] if chain else (func.id if isinstance(func, ast.Name) else None)
    if name in _NP_CONSTRUCTORS:
        for kw in node.keywords:
            if kw.arg == "dtype":
                return _static_dtype(kw.value)
    return None


class ContractRule(Rule):
    id = "R5"
    name = "dtype-contracts"
    summary = (
        "public numpy kernels must declare dtype contracts via @contract; "
        "declarations must be valid and call sites must agree with them"
    )

    def __init__(self) -> None:
        #: function name -> decl, for unambiguous call-site matching.
        self.by_name: Dict[str, ContractDecl] = {}
        self.ambiguous: set = set()
        #: rel -> declaration-level findings collected during prepare.
        self._decl_findings: Dict[str, List[Finding]] = {}
        #: rel -> names of contracted functions defined in that file.
        self._declared_in: Dict[str, set] = {}

    # -- prepare: collect declarations project-wide ---------------------

    def prepare(self, project: "Project") -> None:
        for source in project.sources:
            for func, call in self._contracted_functions(source):
                self._collect(source, func, call)

    @staticmethod
    def _contracted_functions(
        source: SourceFile,
    ) -> Iterator["Tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.Call]"]:
        for node in ast.walk(source.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for decorator in node.decorator_list:
                call = _decorator_is_contract(decorator)
                if call is not None:
                    yield node, call
                    break

    def _collect(
        self,
        source: SourceFile,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        call: ast.Call,
    ) -> None:
        problems = self._decl_findings.setdefault(source.rel, [])
        args = func.args
        raw_params = [
            a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]
        ]
        params = tuple(
            p for i, p in enumerate(raw_params) if not (i == 0 and p in ("self", "cls"))
        )
        decl = ContractDecl(
            rel=source.rel, line=func.lineno, qualname=func.name, params=params
        )
        for kw in call.keywords:
            if kw.arg is None:
                problems.append(
                    source.finding(
                        self.id, call, "@contract specs must be written inline, not **-unpacked"
                    )
                )
                continue
            if not (isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str)):
                problems.append(
                    source.finding(
                        self.id,
                        kw.value,
                        f"@contract spec for {kw.arg!r} must be a string literal "
                        "so it can be checked statically",
                    )
                )
                continue
            try:
                spec = parse_spec(kw.arg, kw.value.value)
            except ContractViolationError as exc:
                problems.append(source.finding(self.id, kw.value, str(exc)))
                continue
            if kw.arg != "returns" and kw.arg not in params:
                problems.append(
                    source.finding(
                        self.id,
                        kw.value,
                        f"@contract on {func.name}() names unknown parameter "
                        f"{kw.arg!r} (has: {', '.join(params) or 'none'})",
                    )
                )
                continue
            decl.specs[kw.arg] = spec
        self._declared_in.setdefault(source.rel, set()).add(func.name)
        if func.name in self.by_name:
            self.ambiguous.add(func.name)
        else:
            self.by_name[func.name] = decl

    # -- check: per-file ------------------------------------------------

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._decl_findings.get(source.rel, [])
        yield from self._check_required(source)
        yield from self._check_calls(source)

    def _check_required(self, source: SourceFile) -> Iterator[Finding]:
        for suffix, names in REQUIRED_CONTRACTS.items():
            if not source.rel.replace("\\", "/").endswith(suffix):
                continue
            declared = self._declared_in.get(source.rel, set())
            defined = {
                node.name: node
                for node in ast.walk(source.tree)
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            for name in names:
                if name in defined and name not in declared:
                    yield source.finding(
                        self.id,
                        defined[name],
                        f"kernel `{name}` must declare its array dtypes with "
                        "@contract (repro.utils.contracts) — its payload crosses "
                        "module boundaries",
                    )

    def _check_calls(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            decl = self._decl_for_call(node)
            if decl is None:
                continue
            for index, arg in enumerate(node.args):
                yield from self._check_arg(source, node, decl, arg, index, None)
            for kw in node.keywords:
                if kw.arg is not None:
                    yield from self._check_arg(source, node, decl, kw.value, None, kw.arg)

    def _decl_for_call(self, node: ast.Call) -> Optional[ContractDecl]:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return None
        if name in self.ambiguous:
            return None
        return self.by_name.get(name)

    def _check_arg(
        self,
        source: SourceFile,
        call: ast.Call,
        decl: ContractDecl,
        arg: ast.expr,
        index: Optional[int],
        keyword: Optional[str],
    ) -> Iterator[Finding]:
        spec = decl.spec_for(index, keyword)
        if spec is None:
            return
        actual = _argument_dtype(arg)
        if actual is not None and actual != spec.dtype:
            label = keyword if keyword is not None else decl.params[index or 0]
            yield source.finding(
                self.id,
                arg,
                f"argument `{label}` of {decl.qualname}() is built as {actual} "
                f"but the kernel's contract requires {spec.describe()} "
                f"(declared at {decl.rel}:{decl.line})",
            )
