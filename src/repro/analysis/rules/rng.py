"""R3 — seeded-RNG discipline in the Monte-Carlo code.

The paper's accuracy and reproducibility claims rest on every walk
bundle being replayable from a seed: results tables, regression tests,
and the parallel sweep's "identical to sequential" guarantee all assume
it.  Module-level RNG (``np.random.rand``, ``random.random``, the
global ``np.random.seed``) draws from hidden process-wide state, which
breaks replay and couples concurrent components through a shared
stream.

In the scoped modules (``core/``, ``baselines/``,
``graph/generators.py``) the rule flags:

- calls to ``np.random.<fn>`` / ``numpy.random.<fn>`` for any function
  that *draws from or mutates* the global stream (constructing
  generators — ``default_rng``, ``Generator``, ``SeedSequence``,
  bit generators — is the sanctioned API and stays allowed);
- any use of the stdlib :mod:`random` module: importing it, importing
  names from it, or calling through it.

The fix is always the same: accept a ``seed`` / ``rng`` argument and
thread it through :func:`repro.utils.rng.ensure_rng`.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["SeededRngRule"]

#: numpy.random names that construct generators rather than draw from
#: the global stream — the sanctioned, seedable API.
ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "RandomState",  # legacy but explicitly seeded per-instance
    }
)


class SeededRngRule(Rule):
    id = "R3"
    name = "seeded-rng"
    summary = (
        "Monte-Carlo code must thread a seeded numpy Generator; module-level "
        "np.random.* draws and the stdlib random module are forbidden"
    )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        aliases = source.aliases
        numpy_aliases = {
            alias
            for alias, target in aliases.modules.items()
            if target in ("numpy", "numpy.random")
        }
        numpy_random_aliases = {
            alias
            for alias, target in aliases.modules.items()
            if target == "numpy.random"
        }
        random_aliases = {
            alias for alias, target in aliases.modules.items() if target == "random"
        }

        for node in ast.walk(source.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(source, node)
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None:
                    continue
                # np.random.<fn>(...) / numpy.random.<fn>(...)
                if (
                    len(chain) == 3
                    and chain[0] in numpy_aliases
                    and chain[1] == "random"
                    and chain[2] not in ALLOWED_NP_RANDOM
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"module-level `{'.'.join(chain)}()` uses the hidden global "
                        "RNG stream — thread a seeded Generator "
                        "(repro.utils.rng.ensure_rng) instead",
                    )
                # <alias>.<fn>(...) with alias bound to numpy.random
                elif (
                    len(chain) == 2
                    and chain[0] in numpy_random_aliases
                    and chain[1] not in ALLOWED_NP_RANDOM
                ):
                    yield source.finding(
                        self.id,
                        node,
                        f"module-level `numpy.random.{chain[1]}()` uses the hidden "
                        "global RNG stream — thread a seeded Generator instead",
                    )
                # stdlib random.<fn>(...)
                elif len(chain) == 2 and chain[0] in random_aliases:
                    yield source.finding(
                        self.id,
                        node,
                        f"stdlib `random.{chain[1]}()` is unseeded process-global "
                        "state — use a numpy Generator threaded from a seed",
                    )

    def _check_import(
        self, source: SourceFile, node: "ast.Import | ast.ImportFrom"
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name == "random" or name.name.startswith("random."):
                    yield source.finding(
                        self.id,
                        node,
                        "import of the stdlib `random` module — Monte-Carlo code "
                        "must use seeded numpy Generators (repro.utils.rng)",
                    )
        else:
            if node.module == "random" and node.level == 0:
                yield source.finding(
                    self.id,
                    node,
                    "import from the stdlib `random` module — Monte-Carlo code "
                    "must use seeded numpy Generators (repro.utils.rng)",
                )
            elif node.module in ("numpy.random", "numpy") and node.level == 0:
                for name in node.names:
                    bare = name.name
                    if node.module == "numpy" and bare != "random":
                        continue
                    if node.module == "numpy.random" and bare not in ALLOWED_NP_RANDOM:
                        yield source.finding(
                            self.id,
                            node,
                            f"import of `numpy.random.{bare}` — only generator "
                            "constructors (default_rng, SeedSequence, ...) may be "
                            "imported; draws must go through a threaded Generator",
                        )
