"""Rule registry of the project linter.

Each rule is a class with a stable ``id`` (``R1``..``R5``), a short
``name``, and a ``check(project, source)`` generator yielding
:class:`~repro.analysis.findings.Finding`.  Rules that need cross-file
state (R5 validates call sites against contracts declared elsewhere)
implement ``prepare(project)``, called once before any ``check``.

The registry is ordered and append-only: rule ids are referenced from
``# repro: noqa R<N>`` comments in source, so renumbering would silently
invalidate existing waivers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Type

from repro.analysis.findings import Finding
from repro.analysis.source import SourceFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["Rule", "all_rules"]


class Rule:
    """Base class: one project invariant checked over the AST."""

    id: str = "R0"
    name: str = "abstract"
    #: One-line description rendered by ``repro lint --explain``.
    summary: str = ""

    def prepare(self, project: "Project") -> None:
        """Cross-file collection pass; default is no-op."""

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.id} {self.name}>"


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    from repro.analysis.rules.contracts import ContractRule
    from repro.analysis.rules.locks import LockDisciplineRule
    from repro.analysis.rules.obsguard import ObsGuardRule
    from repro.analysis.rules.rng import SeededRngRule
    from repro.analysis.rules.snapshots import SnapshotImmutabilityRule

    ordered: List[Type[Rule]] = [
        LockDisciplineRule,
        SnapshotImmutabilityRule,
        SeededRngRule,
        ObsGuardRule,
        ContractRule,
    ]
    return [rule() for rule in ordered]
