"""R2 — snapshot immutability on the query path.

The zero-downtime swap contract (PR 2) is that in-flight queries read an
immutable ``EngineSnapshot`` whose ``CandidateIndex`` is never mutated:
index maintenance must patch a ``.clone()`` and publish it as a *new*
engine.  A single stray ``index.signatures[u] = ...`` on a live index
would corrupt answers for every concurrent reader — silently.

The rule flags, in the scoped modules:

1. mutation of index payload attributes — assignment (plain, augmented,
   or through a subscript) to ``<x>.signatures`` / ``<x>.inverted`` /
   ``<x>.gamma.values``, and mutating container-method calls on them
   (``.append``, ``.update``, ``.extend``, ...);
2. calls to declared index mutators (``replace_signature``);
3. attribute assignment on any receiver annotated as ``CandidateIndex``
   or ``EngineSnapshot`` (parameter or variable annotations).

Exemptions — the blessed write paths:

- receivers *owned* by the enclosing function: locals assigned from a
  ``.clone()``-family call (``clone``, ``clone_cow``, ...) or from an
  owner-class constructor (``CandidateIndex(...)``,
  ``EngineSnapshot(...)``, ``GammaTable(...)``, ``cls(...)``);
- ``self`` inside the owner classes themselves (the class's own methods
  are the mutation API the clone path uses).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["SnapshotImmutabilityRule"]

#: Classes whose instances are the protected snapshot state.  Their own
#: method bodies are the blessed mutation API — this includes the
#: buffer-backed index's lazy legacy-view cache (``__getattr__``).
OWNER_CLASSES = (
    "CandidateIndex",
    "BufferBackedCandidateIndex",
    "EngineSnapshot",
    "GammaTable",
)

#: Attribute names that hold index payload (unique enough project-wide).
PAYLOAD_ATTRS = ("signatures", "inverted")

#: Methods that mutate a CandidateIndex in place.
INDEX_MUTATORS = ("replace_signature",)

#: Container methods that mutate their receiver.
CONTAINER_MUTATORS = (
    "append", "extend", "insert", "remove", "pop", "popitem",
    "clear", "update", "setdefault", "sort", "reverse", "fill",
)


def _constructor_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _owned_locals(func: Union[ast.FunctionDef, ast.AsyncFunctionDef]) -> Set[str]:
    """Local names bound from a clone-family call or an owner constructor."""
    owned: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
            continue
        name = _constructor_name(node.value)
        if name is None:
            continue
        if name.startswith("clone") or name in OWNER_CLASSES or name == "cls":
            for target in node.targets:
                if isinstance(target, ast.Name):
                    owned.add(target.id)
    return owned


def _annotation_mentions_owner(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    text = ast.dump(annotation)
    return any(cls in text for cls in OWNER_CLASSES)


def _annotated_owner_params(
    func: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> Set[str]:
    """Parameter and variable names annotated with an owner class."""
    names: Set[str] = set()
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if _annotation_mentions_owner(arg.annotation):
            names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_mentions_owner(node.annotation):
                names.add(node.target.id)
    return names


def _root_name(chain: Tuple[str, ...]) -> str:
    return chain[0]


def _strip_subscript(node: ast.expr) -> ast.expr:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _payload_target(node: ast.expr) -> Optional[Tuple[Tuple[str, ...], str]]:
    """``(receiver chain, payload attr)`` when ``node`` is a payload
    attribute (possibly through subscripts), else None."""
    node = _strip_subscript(node)
    if not isinstance(node, ast.Attribute):
        return None
    chain = attribute_chain(node)
    if chain is None:
        return None
    # <recv>.signatures / <recv>.inverted
    if chain[-1] in PAYLOAD_ATTRS and len(chain) >= 2:
        return chain[:-1], chain[-1]
    # <recv>.gamma.values
    if len(chain) >= 3 and chain[-2:] == ("gamma", "values"):
        return chain[:-2], "gamma.values"
    return None


class SnapshotImmutabilityRule(Rule):
    id = "R2"
    name = "snapshot-immutability"
    summary = (
        "CandidateIndex/EngineSnapshot state may not be mutated outside the "
        "clone-and-publish path (patch a `.clone()`, never a live index)"
    )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        # Class bodies of the owner classes are the mutation API itself.
        owner_spans: list[Tuple[int, int]] = []
        for cls in source.classes():
            if cls.name in OWNER_CLASSES:
                owner_spans.append((cls.lineno, cls.end_lineno or cls.lineno))

        def inside_owner(node: ast.AST) -> bool:
            line = getattr(node, "lineno", 0)
            return any(lo <= line <= hi for lo, hi in owner_spans)

        functions = [
            node
            for node in ast.walk(source.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        # Module-level statements get an empty ownership context.
        yield from self._check_scope(source, source.tree, set(), set(), inside_owner,
                                     skip_functions=True)
        for func in functions:
            owned = _owned_locals(func)
            annotated = _annotated_owner_params(func)
            # skip_functions: nested defs are visited as their own scope
            # by the surrounding loop, so don't double-report them here.
            yield from self._check_scope(
                source, func, owned, annotated, inside_owner, skip_functions=True
            )

    def _check_scope(
        self,
        source: SourceFile,
        scope: ast.AST,
        owned: Set[str],
        annotated: Set[str],
        inside_owner,
        skip_functions: bool,
    ) -> Iterator[Finding]:
        def exempt_receiver(chain: Optional[Sequence[str]], node: ast.AST) -> bool:
            if inside_owner(node):
                return True
            if chain is None:
                # Receiver too dynamic to resolve (call/subscript root);
                # stay quiet rather than guess.
                return True
            root = chain[0]
            return root in owned or root == "cls"

        for node in self._walk(scope, skip_functions):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    payload = _payload_target(target)
                    if payload is not None:
                        chain, attr = payload
                        if not exempt_receiver(chain, node):
                            yield source.finding(
                                self.id,
                                node,
                                f"mutation of index payload `{'.'.join(chain)}.{attr}` "
                                "outside the clone-and-publish path — patch a "
                                "`.clone()` instead (snapshot immutability)",
                            )
                        continue
                    # Any attribute assignment on an annotated owner object.
                    stripped = _strip_subscript(target)
                    if isinstance(stripped, ast.Attribute):
                        chain = attribute_chain(stripped)
                        if (
                            chain is not None
                            and chain[0] in annotated
                            and chain[0] not in owned
                        ):
                            yield source.finding(
                                self.id,
                                node,
                                f"assignment to `{'.'.join(chain)}` mutates a "
                                f"{OWNER_CLASSES[0]}/{OWNER_CLASSES[1]}-typed object "
                                "on the query path — snapshots are immutable",
                            )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                receiver = node.func.value
                if method in INDEX_MUTATORS:
                    chain = attribute_chain(receiver)
                    if not exempt_receiver(chain, node):
                        rendered = ".".join(chain) if chain else "<expr>"
                        yield source.finding(
                            self.id,
                            node,
                            f"call to index mutator `{rendered}.{method}()` outside "
                            "the clone-and-publish path — patch a `.clone()` instead",
                        )
                elif method in CONTAINER_MUTATORS:
                    payload = _payload_target(receiver)
                    if payload is not None:
                        chain, attr = payload
                        if not exempt_receiver(chain, node):
                            yield source.finding(
                                self.id,
                                node,
                                f"mutating call `.{method}()` on index payload "
                                f"`{'.'.join(chain)}.{attr}` outside the "
                                "clone-and-publish path",
                            )

    @staticmethod
    def _walk(scope: ast.AST, skip_functions: bool) -> Iterator[ast.AST]:
        """Walk ``scope``; optionally stop at nested function boundaries."""
        if not skip_functions:
            root_children = list(ast.iter_child_nodes(scope))
            stack = root_children
        else:
            stack = [
                child
                for child in ast.iter_child_nodes(scope)
                if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
            ]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if skip_functions and isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                stack.append(child)
