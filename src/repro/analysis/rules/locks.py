"""R1 — lock discipline for shared mutable state.

The serve layer runs queries on a thread pool while flushes and swaps
run elsewhere; its correctness depends on every access to a shared
attribute happening under the lock that guards it.  CPython's GIL makes
single attribute reads *atomic*, but not *consistent* — a read outside
the lock can interleave with a multi-step mutation and observe a state
no critical section ever published.

An attribute opts in by annotation at its ``__init__`` assignment::

    class EngineHandle:
        def __init__(self) -> None:
            self._lock = threading.Lock()
            self._snapshot = make()  # locked-by: _lock

or via a class-level registry (useful when the assignment line is
crowded)::

    class EngineHandle:
        _locked_ = {"_snapshot": "_lock"}

Every ``self.<attr>`` read or write in any method other than
``__init__`` must then sit lexically inside ``with self.<lock>:``.
Nested ``def``/``lambda`` bodies reset the guard: a closure created
inside a critical section may run long after the lock was released.

One escape hatch for private helpers: a method whose name ends in
``_locked`` (e.g. ``_pending_locked``) declares by convention that its
callers already hold the class's guarding locks, so its body is scanned
with every registered lock considered held.  The convention only moves
the obligation to call sites — which *are* checked, since the helper's
callers still need a lexical ``with`` around any locked attribute they
touch themselves.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Union

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["LockDisciplineRule"]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _locked_attrs(source: SourceFile, cls: ast.ClassDef) -> Dict[str, str]:
    """attr -> lock name, from comments and the ``_locked_`` registry."""
    locked: Dict[str, str] = {}
    for node in ast.walk(cls):
        if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            continue
        # The comment may sit on any line of a multi-line assignment.
        span = range(node.lineno, (node.end_lineno or node.lineno) + 1)
        lock = next((source.locked_by[ln] for ln in span if ln in source.locked_by), None)
        if lock is None:
            continue
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            chain = attribute_chain(target)
            if chain is not None and len(chain) == 2 and chain[0] == "self":
                locked[chain[1]] = lock
    for stmt in cls.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and stmt.targets[0].id == "_locked_"
            and isinstance(stmt.value, ast.Dict)
        ):
            for key, value in zip(stmt.value.keys, stmt.value.values):
                if isinstance(key, ast.Constant) and isinstance(value, ast.Constant):
                    locked[str(key.value)] = str(value.value)
    return locked


def _is_self_attr(node: ast.AST, attr: str) -> bool:
    chain = attribute_chain(node)
    return chain is not None and chain[:2] == ("self", attr)


class _MethodScanner(ast.NodeVisitor):
    """Walk one method body tracking which locks are lexically held."""

    def __init__(
        self,
        rule: "LockDisciplineRule",
        source: SourceFile,
        cls_name: str,
        method_name: str,
        locked: Dict[str, str],
    ) -> None:
        self.rule = rule
        self.source = source
        self.cls_name = cls_name
        self.method_name = method_name
        self.locked = locked
        # ``*_locked`` helpers run with their class's locks held by
        # calling convention (the call sites remain checked).
        if method_name.endswith("_locked"):
            self.held: List[str] = sorted(set(locked.values()))
        else:
            self.held = []
        self.findings: List[Finding] = []

    # -- guard tracking -------------------------------------------------

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        acquired: List[str] = []
        for item in node.items:
            for attr, lock in self.locked.items():
                del attr
                if _is_self_attr(item.context_expr, lock):
                    acquired.append(lock)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_nested(self, node: ast.AST) -> None:
        # A nested function may outlive the critical section it was
        # defined in, so its body is checked with no locks held.
        outer = self.held
        self.held = []
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.held = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    # -- the actual check ----------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.locked
        ):
            lock = self.locked[node.attr]
            if lock not in self.held:
                access = "write to" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read of"
                self.findings.append(
                    self.source.finding(
                        self.rule.id,
                        node,
                        f"{access} shared attribute `self.{node.attr}` outside "
                        f"`with self.{lock}:` in {self.cls_name}.{self.method_name} "
                        f"(declared locked-by: {lock})",
                    )
                )
        self.generic_visit(node)


class LockDisciplineRule(Rule):
    id = "R1"
    name = "lock-discipline"
    summary = (
        "attributes declared `# locked-by: <lock>` (or listed in a class "
        "`_locked_` registry) may only be accessed inside `with self.<lock>:`"
    )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        for cls in source.classes():
            locked = _locked_attrs(source, cls)
            if not locked:
                continue
            for stmt in cls.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name == "__init__":
                    continue
                scanner = _MethodScanner(self, source, cls.name, stmt.name, locked)
                for child in stmt.body:
                    scanner.visit(child)
                yield from scanner.findings
