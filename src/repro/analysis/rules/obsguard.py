"""R4 — hot-path observability hooks must be guarded.

The ``repro.obs`` contract (PR 1) is that disabled metrics cost one
attribute check per hook site.  That only holds if every recording call
in the hot query path is written as::

    if obs.OBS.enabled:
        obs.record_query(stats)

An unguarded ``obs.record_*`` call pays a function call, a registry
lookup, and a lock acquisition per event *even when metrics are off* —
on the walk loop that is millions of avoidable operations per query.

In the scoped hot-path modules (``core/query.py``, ``core/walks.py``,
``core/montecarlo.py``) every call to a recording hook
(``record_*`` / ``set_*`` / ``merge_*`` of :mod:`repro.obs.instrument`)
must be lexically inside an ``if`` whose test is the single-attribute
check ``obs.OBS.enabled`` (or ``OBS.enabled``), possibly as the first
operand of an ``and`` chain.  ``obs.trace(...)`` used as a context
manager is exempt — its disabled path is already a shared no-op object.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Set, Union

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["ObsGuardRule"]

_HOOK_PREFIXES = ("record_", "set_", "merge_")

#: Dotted module whose recording hooks are guarded.
_INSTRUMENT = "repro.obs.instrument"


def _is_enabled_check(test: ast.expr) -> bool:
    """Whether ``test`` is (or starts with) the ``OBS.enabled`` idiom."""
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And) and test.values:
        return _is_enabled_check(test.values[0])
    chain = attribute_chain(test)
    if chain is None:
        return False
    return chain[-2:] == ("OBS", "enabled")


class ObsGuardRule(Rule):
    id = "R4"
    name = "hot-path-obs-guard"
    summary = (
        "obs recording hooks in the hot query path must sit inside the "
        "single-attribute guard `if obs.OBS.enabled:`"
    )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        hook_modules: Set[str] = {
            alias
            for alias, target in source.aliases.modules.items()
            if target in (_INSTRUMENT, "repro.obs")
        }
        hook_names: Set[str] = {
            alias
            for alias, target in source.aliases.names.items()
            if target.startswith(_INSTRUMENT + ".")
            and target.rpartition(".")[2].startswith(_HOOK_PREFIXES)
        }
        findings: List[Finding] = []
        self._scan(source, source.tree, False, hook_modules, hook_names, findings)
        yield from findings

    def _scan(
        self,
        source: SourceFile,
        node: ast.AST,
        guarded: bool,
        hook_modules: Set[str],
        hook_names: Set[str],
        findings: List[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            child_guarded = guarded
            if isinstance(child, ast.If) and _is_enabled_check(child.test):
                # The body is guarded; the orelse is not.
                for stmt in child.body:
                    self._scan(source, stmt, True, hook_modules, hook_names, findings)
                    self._check_node(
                        source, stmt, True, hook_modules, hook_names, findings
                    )
                for stmt in child.orelse:
                    self._scan(source, stmt, guarded, hook_modules, hook_names, findings)
                    self._check_node(
                        source, stmt, guarded, hook_modules, hook_names, findings
                    )
                self._check_node(
                    source, child.test, True, hook_modules, hook_names, findings
                )
                continue
            self._check_node(
                source, child, child_guarded, hook_modules, hook_names, findings
            )
            self._scan(source, child, child_guarded, hook_modules, hook_names, findings)

    def _check_node(
        self,
        source: SourceFile,
        node: ast.AST,
        guarded: bool,
        hook_modules: Set[str],
        hook_names: Set[str],
        findings: List[Finding],
    ) -> None:
        if guarded or not isinstance(node, ast.Call):
            return
        rendered = self._hook_call(node, hook_modules, hook_names)
        if rendered is not None:
            findings.append(
                source.finding(
                    self.id,
                    node,
                    f"unguarded hot-path hook `{rendered}` — wrap it in "
                    "`if obs.OBS.enabled:` so disabled metrics cost one "
                    "attribute check",
                )
            )

    @staticmethod
    def _hook_call(
        node: ast.Call,
        hook_modules: Set[str],
        hook_names: Set[str],
    ) -> Union[str, None]:
        func = node.func
        if isinstance(func, ast.Attribute):
            chain = attribute_chain(func)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] in hook_modules
                and chain[1].startswith(_HOOK_PREFIXES)
            ):
                return ".".join(chain)
        elif isinstance(func, ast.Name) and func.id in hook_names:
            return func.id
        return None
