"""Incremental-analysis cache for ``repro lint`` (``.repro-lint-cache/``).

Two tiers, both keyed by *content*, never by timestamps:

- **Tier 1 — whole invocation.**  The key digests the analyzer's own
  sources, the invocation shape (``flow``/``only``/``ignore``/scope
  overrides),
  and every ``(rel path, file sha)`` pair.  An unchanged tree is a
  single JSON read — this is what makes the warm ``repro lint --flow``
  run a multiple faster than the cold one (asserted in tests, recorded
  in ``BENCH_lint.json``).
- **Tier 2 — per file, per rule.**  Only rules with no cross-file
  ``prepare`` phase qualify (detected structurally:
  ``type(rule).prepare is Rule.prepare``); their ``check`` output on a
  file depends on that file's bytes alone, so edited trees re-analyze
  only the changed files under R1–R4.  The whole-program rules (R5's
  call-site census and the flow rules' :class:`ProjectIndex`) are
  *deliberately excluded*: one changed file can move their findings in
  any other file, so they re-run whenever tier 1 misses.

Correctness before speed: a key mismatch anywhere falls back to a full
run, and corrupt or unreadable cache files are treated as misses — the
cache can change lint wall time, never lint output.  ``--no-cache``
bypasses both tiers entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

__all__ = ["CACHE_DIR_NAME", "LintCache", "analyzer_digest"]

CACHE_DIR_NAME = ".repro-lint-cache"

#: bump to invalidate every cache entry on disk-format changes.
_SCHEMA = 1

#: keep at most this many tier-1 reports / tier-2 entries on disk.
_MAX_FULL_REPORTS = 8
_MAX_PERFILE_ENTRIES = 8192

_analyzer_digest: Optional[str] = None


def analyzer_digest() -> str:
    """Content hash of the ``repro.analysis`` package itself.

    Any edit to a rule, the runner, or this module must invalidate
    every cached result; hashing the package sources is the only salt
    that cannot be forgotten.
    """
    global _analyzer_digest
    if _analyzer_digest is None:
        package_dir = Path(__file__).resolve().parent
        hasher = hashlib.sha256(f"schema={_SCHEMA}".encode())
        for path in sorted(package_dir.rglob("*.py")):
            hasher.update(str(path.relative_to(package_dir)).encode())
            try:
                hasher.update(path.read_bytes())
            except OSError:  # pragma: no cover - unreadable own source
                hasher.update(b"?")
        _analyzer_digest = hasher.hexdigest()
    return _analyzer_digest


def _finding_to_row(finding: Finding) -> List[object]:
    return [finding.rule, finding.path, finding.line, finding.col, finding.message]


def _finding_from_row(row: Sequence[object]) -> Finding:
    rule, path, line, col, message = row
    return Finding(
        rule=str(rule), path=str(path), line=int(line), col=int(col),
        message=str(message),
    )


def _atomic_write(path: Path, payload: str) -> None:
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


class LintCache:
    """One invocation's view of the on-disk cache (created lazily)."""

    def __init__(self, directory: Path) -> None:
        self.directory = directory
        self._perfile: Optional[Dict[str, List[List[object]]]] = None
        self._perfile_dirty = False

    # -- keys ----------------------------------------------------------

    @staticmethod
    def file_sha(text: str) -> str:
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    @staticmethod
    def invocation_key(
        file_shas: Sequence[Tuple[str, str]],
        flow: bool,
        only: Optional[Sequence[str]],
        scopes_sig: str,
        ignore: Optional[Sequence[str]] = None,
    ) -> str:
        hasher = hashlib.sha256(analyzer_digest().encode())
        hasher.update(f"flow={flow};only={sorted(only) if only else None};".encode())
        hasher.update(f"ignore={sorted(ignore) if ignore else None};".encode())
        hasher.update(scopes_sig.encode())
        for rel, sha in sorted(file_shas):
            hasher.update(f"{rel}\x00{sha}\x00".encode())
        return hasher.hexdigest()

    @staticmethod
    def perfile_key(rule_id: str, rel: str, sha: str) -> str:
        return hashlib.sha256(
            f"{analyzer_digest()}\x00{rule_id}\x00{rel}\x00{sha}".encode()
        ).hexdigest()

    # -- tier 1: whole reports ----------------------------------------

    def load_report(self, key: str) -> Optional[Dict[str, List[Finding]]]:
        path = self.directory / f"report-{key}.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            loaded = {
                section: [_finding_from_row(row) for row in payload[section]]
                for section in ("findings", "suppressed", "stale")
            }
        except (OSError, ValueError, KeyError, TypeError):
            return None
        # Refresh mtime so steadily-used reports survive pruning.
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - cosmetic only
            pass
        return loaded

    def store_report(
        self,
        key: str,
        findings: Sequence[Finding],
        suppressed: Sequence[Finding],
        stale: Sequence[Finding],
    ) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "findings": [_finding_to_row(f) for f in findings],
                "suppressed": [_finding_to_row(f) for f in suppressed],
                "stale": [_finding_to_row(f) for f in stale],
            }
        )
        _atomic_write(self.directory / f"report-{key}.json", payload)
        self._prune_reports()

    def _prune_reports(self) -> None:
        reports = sorted(
            self.directory.glob("report-*.json"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )
        for path in reports[_MAX_FULL_REPORTS:]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent prune
                pass

    # -- tier 2: per-file rule results --------------------------------

    def _load_perfile(self) -> Dict[str, List[List[object]]]:
        if self._perfile is None:
            try:
                raw = (self.directory / "perfile.json").read_text(encoding="utf-8")
                data = json.loads(raw)
                self._perfile = data if isinstance(data, dict) else {}
            except (OSError, ValueError):
                self._perfile = {}
        return self._perfile

    def load_file_findings(self, key: str) -> Optional[List[Finding]]:
        rows = self._load_perfile().get(key)
        if rows is None:
            return None
        try:
            return [_finding_from_row(row) for row in rows]
        except (ValueError, TypeError):
            return None

    def store_file_findings(self, key: str, findings: Sequence[Finding]) -> None:
        self._load_perfile()[key] = [_finding_to_row(f) for f in findings]
        self._perfile_dirty = True

    def flush(self) -> None:
        """Persist tier-2 updates collected during this invocation."""
        if not self._perfile_dirty or self._perfile is None:
            return
        if len(self._perfile) > _MAX_PERFILE_ENTRIES:
            for key in list(self._perfile)[: len(self._perfile) - _MAX_PERFILE_ENTRIES]:
                del self._perfile[key]
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.directory / "perfile.json", json.dumps(self._perfile))
        self._perfile_dirty = False
