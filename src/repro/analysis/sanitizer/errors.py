"""The sanitizer's violation type.

:class:`SanitizerError` deliberately does **not** inherit from
:class:`repro.errors.ReproError`: the serve layer converts ``ReproError``
into a polite bad-request response, and a concurrency-invariant
violation must never be downgraded to one — it should blow up the test
(or the request) loudly.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["SanitizerError"]


class SanitizerError(Exception):
    """A runtime concurrency/determinism invariant was violated.

    Carries the two conflicting stacks (formatted tracebacks) so the
    report names both sides of the conflict: for a lock-order inversion,
    where each of the two orders was established; for an RNG violation,
    the first and the offending consumption site.
    """

    def __init__(
        self,
        message: str,
        first_stack: Optional[str] = None,
        second_stack: Optional[str] = None,
    ) -> None:
        self.first_stack = first_stack or ""
        self.second_stack = second_stack or ""
        parts = [message]
        if self.first_stack:
            parts.append("--- first acquisition stack ---\n" + self.first_stack.rstrip())
        if self.second_stack:
            parts.append(
                "--- conflicting acquisition stack ---\n" + self.second_stack.rstrip()
            )
        super().__init__("\n".join(parts))
        self.message = message
