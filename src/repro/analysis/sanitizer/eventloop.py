"""Event-loop blocking detector: the runtime complement of rule R9.

R9 proves from source that known blocking sinks cannot be *reached*
from ``async def`` bodies; this monitor measures what actually ran.  It
interposes on :meth:`asyncio.events.Handle._run` — the single choke
point every loop callback, task step, and timer goes through — and
records any callback whose wall-clock duration crosses the threshold.
Wall time is deliberate: from the event loop's point of view a callback
descheduled by the OS blocks other connections exactly as much as one
burning CPU.

Violations are *recorded*, not raised in place: ``Handle._run`` is
called from inside the loop's dispatch machinery, where an exception
would be routed to the loop exception handler (or kill the loop) and
the test would fail with an unrelated traceback.  Instead the pytest
plugin calls :meth:`EventLoopMonitor.check` after each test, and code
can call it explicitly at a quiesce point.

Threshold default is 0.5 s, overridable via the
``REPRO_SANITIZE_LOOP_THRESHOLD`` environment variable (CI sets a
looser value on oversubscribed runners, where descheduling alone can
stretch an innocent callback).
"""

from __future__ import annotations

import asyncio.events
import os
import time
from typing import Callable, List, Optional

from repro.analysis.sanitizer.errors import SanitizerError

__all__ = ["LOOP_MONITOR", "EventLoopMonitor"]

_DEFAULT_THRESHOLD = 0.5


def _env_threshold() -> float:
    try:
        return float(os.environ.get("REPRO_SANITIZE_LOOP_THRESHOLD", ""))
    except ValueError:
        return _DEFAULT_THRESHOLD


class EventLoopMonitor:
    """Records loop callbacks that ran longer than ``threshold`` seconds."""

    def __init__(self, threshold: Optional[float] = None) -> None:
        self.threshold = threshold if threshold is not None else _env_threshold()
        self.violations: List[str] = []
        self._original: Optional[Callable] = None

    @property
    def installed(self) -> bool:
        return self._original is not None

    def install(self) -> None:
        """Patch ``Handle._run`` (idempotent; covers every loop)."""
        if self._original is not None:
            return
        original = asyncio.events.Handle._run
        monitor = self

        def _timed_run(handle: "asyncio.events.Handle") -> None:
            start = time.perf_counter()
            try:
                return original(handle)
            finally:
                elapsed = time.perf_counter() - start
                if elapsed >= monitor.threshold:
                    monitor.violations.append(
                        f"event-loop callback blocked the loop for "
                        f"{elapsed:.3f}s (threshold {monitor.threshold:.3f}s): "
                        f"{handle!r}"
                    )

        asyncio.events.Handle._run = _timed_run  # type: ignore[method-assign]
        self._original = original

    def uninstall(self) -> None:
        if self._original is not None:
            asyncio.events.Handle._run = self._original  # type: ignore[method-assign]
            self._original = None

    def check(self) -> None:
        """Raise :class:`SanitizerError` if any callback blocked the loop.

        Call at a quiesce point (test teardown, after server shutdown) —
        never from inside a loop callback.
        """
        if self.violations:
            details = "\n".join(f"  - {v}" for v in self.violations)
            raise SanitizerError(
                f"{len(self.violations)} event-loop callback(s) exceeded the "
                f"blocking threshold:\n{details}\n"
                "dispatch blocking work via run_in_executor/asyncio.to_thread"
            )

    def reset(self) -> None:
        self.violations.clear()


#: process-global monitor, installed by ``sanitizer.enable()``.
LOOP_MONITOR = EventLoopMonitor()
