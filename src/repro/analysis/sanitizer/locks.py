"""Order-recording lock proxies and the global lock-order DAG.

This is a vector-clock-lite take on dynamic deadlock detection (in the
spirit of ThreadSanitizer's lock-order checker): every sanitized lock
acquisition consults the acquiring thread's *acquisition stack* (the
locks it already holds) and records a directed edge ``held -> wanted``
in a process-global lock-order DAG.  Before the edge is recorded, the
monitor checks whether the reverse direction is already reachable —
if ``wanted ->* held`` exists, some execution established the opposite
order, and the two orders together form a potential deadlock.  The
check runs at *acquisition attempt* time, before blocking on the inner
lock, so a provoked inversion raises :class:`SanitizerError` (naming
both acquisition stacks) instead of actually deadlocking the test run.

Identity is per lock *instance* (like a real dynamic race detector):
two unrelated ``EngineHandle`` objects never alias.  Locks are labelled
with the name passed to :func:`repro.utils.sync.make_lock` so reports
read ``EngineHandle._lock -> DynamicSimRankEngine._state_lock`` rather
than raw ids.

Also caught, beyond ABBA inversions:

- same-thread re-acquisition of a *non-reentrant* lock (a guaranteed
  self-deadlock);
- longer cycles (A -> B -> C -> A) — reachability is transitive over
  every recorded edge, whichever threads recorded them.

Reentrant (:class:`SanitizedRLock`) re-acquisition by the holding
thread records no edge — by definition it cannot deadlock.
"""

from __future__ import annotations

import threading
import traceback
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.sanitizer.errors import SanitizerError

__all__ = ["LockOrderMonitor", "MONITOR", "SanitizedLock", "SanitizedRLock"]


def _capture_stack() -> str:
    """The current stack, rendered, minus the sanitizer's own frames."""
    frames = [
        frame
        for frame in traceback.extract_stack()
        if "analysis/sanitizer" not in frame.filename.replace("\\", "/")
    ]
    return "".join(traceback.format_list(frames[-12:]))


class _Edge:
    """One recorded ``held -> wanted`` order, with its witness stacks."""

    __slots__ = ("held_name", "wanted_name", "held_stack", "wanted_stack", "thread")

    def __init__(
        self,
        held_name: str,
        wanted_name: str,
        held_stack: str,
        wanted_stack: str,
        thread: str,
    ) -> None:
        self.held_name = held_name
        self.wanted_name = wanted_name
        self.held_stack = held_stack
        self.wanted_stack = wanted_stack
        self.thread = thread


class LockOrderMonitor:
    """Per-thread acquisition stacks + the global lock-order DAG."""

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._local = threading.local()
        #: (id(held), id(wanted)) -> first witness of that order.
        self._edges: Dict[Tuple[int, int], _Edge] = {}
        #: adjacency over lock ids, for reachability.
        self._succ: Dict[int, Set[int]] = {}
        #: id -> lock, keeps instances alive so ids are never reused.
        self._registry: Dict[int, "SanitizedLock"] = {}

    # -- per-thread state ----------------------------------------------

    def _held(self) -> "List[Tuple[SanitizedLock, str]]":
        stack = getattr(self._local, "held", None)
        if stack is None:
            stack = []
            self._local.held = stack
        return stack

    def held_names(self) -> List[str]:
        """Names of the locks the calling thread currently holds."""
        return [lock.name for lock, _ in self._held()]

    # -- the DAG --------------------------------------------------------

    def _reachable(self, start: int, goal: int) -> bool:
        """Whether ``goal`` is reachable from ``start`` over recorded edges."""
        seen: Set[int] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            frontier.extend(self._succ.get(node, ()))
        return False

    def _witness(self, start: int, goal: int) -> Optional[_Edge]:
        """An edge on some recorded ``start ->* goal`` path (for reports)."""
        seen: Set[int] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            if node in seen:
                continue
            seen.add(node)
            for succ in self._succ.get(node, ()):
                if succ == goal or self._reachable(succ, goal):
                    return self._edges.get((node, succ))
        return None

    def before_acquire(self, lock: "SanitizedLock") -> str:
        """Check the would-be edges; raises on inversion or self-deadlock.

        Returns the captured acquisition stack (threaded through to
        :meth:`after_acquire` so it is captured exactly once).
        """
        held = self._held()
        stack = _capture_stack()
        for held_lock, held_stack in held:
            if held_lock is lock:
                if lock.reentrant:
                    return stack
                raise SanitizerError(
                    f"self-deadlock: thread {threading.current_thread().name!r} "
                    f"re-acquired non-reentrant lock `{lock.name}` it already "
                    "holds",
                    first_stack=held_stack,
                    second_stack=stack,
                )
        with self._mu:
            for held_lock, held_stack in held:
                a, b = id(held_lock), id(lock)
                if (a, b) in self._edges:
                    continue
                if self._reachable(b, a):
                    reverse = self._witness(b, a)
                    detail = (
                        f" (reverse order `{reverse.held_name}` -> "
                        f"`{reverse.wanted_name}` recorded on thread "
                        f"{reverse.thread!r})"
                        if reverse is not None
                        else ""
                    )
                    raise SanitizerError(
                        "lock-order inversion: acquiring "
                        f"`{lock.name}` while holding `{held_lock.name}` "
                        f"contradicts the recorded order `{lock.name}` ->* "
                        f"`{held_lock.name}`{detail}",
                        first_stack=reverse.wanted_stack if reverse else "",
                        second_stack=stack,
                    )
                self._registry[a] = held_lock
                self._registry[b] = lock
                self._edges[(a, b)] = _Edge(
                    held_lock.name,
                    lock.name,
                    held_stack,
                    stack,
                    threading.current_thread().name,
                )
                self._succ.setdefault(a, set()).add(b)
        return stack

    def after_acquire(self, lock: "SanitizedLock", stack: str) -> None:
        self._held().append((lock, stack))

    def on_release(self, lock: "SanitizedLock") -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] is lock:
                del held[index]
                return

    # -- introspection / lifecycle -------------------------------------

    def edges(self) -> List[Tuple[str, str]]:
        """The recorded acquisition orders, as (held, wanted) name pairs."""
        with self._mu:
            return [(e.held_name, e.wanted_name) for e in self._edges.values()]

    def reset(self) -> None:
        """Forget every recorded edge (between tests; held stacks stay)."""
        with self._mu:
            self._edges.clear()
            self._succ.clear()
            self._registry.clear()


#: The process-global monitor every sanitized lock reports to.
MONITOR = LockOrderMonitor()


class SanitizedLock:
    """Drop-in ``threading.Lock`` that reports to a :class:`LockOrderMonitor`."""

    reentrant = False

    def __init__(self, name: str = "lock", monitor: Optional[LockOrderMonitor] = None) -> None:
        self.name = name
        self.monitor = monitor or MONITOR
        self._inner = self._make_inner()

    def _make_inner(self):  # type: ignore[no-untyped-def]
        return threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        stack = self.monitor.before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self.monitor.after_acquire(self, stack)
        return acquired

    def release(self) -> None:
        self.monitor.on_release(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class SanitizedRLock(SanitizedLock):
    """Drop-in ``threading.RLock``; re-acquisition records no edge."""

    reentrant = True

    def _make_inner(self):  # type: ignore[no-untyped-def]
        return threading.RLock()

    def locked(self) -> bool:  # pragma: no cover - parity with RLock
        raise AttributeError("RLock has no locked()")
