"""Runtime zero-alloc accounting for ``# no-alloc`` kernels.

R15 statically flags redundant-copy array allocations inside the loops
of ``# hot-path`` kernels; this checker is its dynamic witness.  A
kernel whose header carries a ``# no-alloc`` comment (detected at
decoration time by :func:`repro.utils.contracts.contract`) runs inside
:meth:`ArrayAllocMonitor.track`, which counts calls to numpy's
*redundant-copy* allocators — ``np.concatenate``, ``np.append``,
``np.copy``, the stacking family, ``np.tile`` — made while the kernel
is on the stack.

The first call per kernel qualname is a **warm-up**: lazy buffers,
one-time reshapes and setup copies are legitimate, so its allocations
are forgiven.  From the second call on, the kernel must be steady-state
allocation-free: any tracked allocation raises
:class:`~repro.analysis.sanitizer.errors.SanitizerError` naming the
allocator(s).

What is deliberately **not** tracked:

- ``np.sort`` / ``np.unique`` and ufunc output buffers — their output
  allocation is inherent to the operation, not a redundant copy; the
  tracked set is exactly the functions a zero-alloc rewrite eliminates
  (preallocate + slice-assign, ``out=``, in-place sort);
- allocations made through numpy's internal C entry points — only
  direct ``np.<allocator>(...)`` calls from repro code hit the patched
  module attributes, which is the granularity R15 reasons about.

Counting is per-thread (a thread-local stack of active kernels), so
parallel kernel invocations never blame each other's allocations.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, List, Set, Tuple

import numpy as np

from repro.analysis.sanitizer.errors import SanitizerError

__all__ = ["ALLOC_MONITOR", "ArrayAllocMonitor", "TRACKED_ALLOCATORS"]

#: numpy module-level functions counted as redundant-copy allocators.
TRACKED_ALLOCATORS: Tuple[str, ...] = (
    "concatenate",
    "vstack",
    "hstack",
    "column_stack",
    "stack",
    "append",
    "copy",
    "tile",
)


class _KernelStack(threading.local):
    def __init__(self) -> None:
        # (kernel qualname, {allocator name: count}) innermost-last.
        self.frames: List[Tuple[str, Dict[str, int]]] = []


class ArrayAllocMonitor:
    """Patches numpy's redundant-copy allocators and accounts them to
    the innermost active ``# no-alloc`` kernel.

    Installed lazily on first :meth:`track` (so importing the sanitizer
    never perturbs numpy), uninstalled via :meth:`uninstall`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stack = _KernelStack()
        self._originals: Dict[str, object] = {}
        self._warmed: Set[str] = set()
        self._installed = False

    # -- patching ------------------------------------------------------

    def install(self) -> None:
        with self._lock:
            if self._installed:
                return
            for name in TRACKED_ALLOCATORS:
                original = getattr(np, name)
                self._originals[name] = original
                setattr(np, name, self._wrap(name, original))
            self._installed = True

    def uninstall(self) -> None:
        with self._lock:
            if not self._installed:
                return
            for name, original in self._originals.items():
                setattr(np, name, original)
            self._originals.clear()
            self._installed = False

    def _wrap(self, name: str, original):  # type: ignore[no-untyped-def]
        def counted(*args, **kwargs):  # type: ignore[no-untyped-def]
            frames = self._stack.frames
            if frames:
                counts = frames[-1][1]
                counts[name] = counts.get(name, 0) + 1
            return original(*args, **kwargs)

        counted.__name__ = name
        counted.__qualname__ = name
        counted.__wrapped__ = original  # type: ignore[attr-defined]
        return counted

    # -- accounting ----------------------------------------------------

    @contextlib.contextmanager
    def track(self, qualname: str) -> Iterator[None]:
        """Run one kernel call under allocation accounting.

        The accounting check runs only when the kernel returns normally
        — a call that raises proves nothing about its steady state.
        """
        self.install()
        counts: Dict[str, int] = {}
        self._stack.frames.append((qualname, counts))
        try:
            yield
            self._account(qualname, counts)
        finally:
            self._stack.frames.pop()

    def _account(self, qualname: str, counts: Dict[str, int]) -> None:
        with self._lock:
            if qualname not in self._warmed:
                self._warmed.add(qualname)
                return
        if counts:
            detail = ", ".join(
                f"np.{name}×{count}" for name, count in sorted(counts.items())
            )
            raise SanitizerError(
                f"no-alloc kernel {qualname} allocated after warm-up: {detail} "
                "(redundant-copy allocators must be hoisted out of the "
                "steady-state path — preallocate and slice-assign, or use "
                "out=)"
            )

    def reset(self) -> None:
        """Forget warm-up records and this thread's active-kernel stack.

        Called between tests by the pytest plugin so each test gets its
        own warm-up allowance.
        """
        with self._lock:
            self._warmed.clear()
        self._stack.frames.clear()


#: process-wide singleton, mirrored after MONITOR / SHADOW_REGISTRY.
ALLOC_MONITOR = ArrayAllocMonitor()
