"""Pytest integration: ``pytest --sanitize``.

Registered from the repository's root ``tests/conftest.py`` via
``pytest_plugins``.  With ``--sanitize`` (or ``REPRO_SANITIZE=1`` in
the environment) the whole run executes under the runtime sanitizer:
every lock created through :func:`repro.utils.sync.make_lock` is an
order-recording proxy and every generator from
:func:`repro.utils.rng.ensure_rng` is a consumption-accounting shadow.
An autouse fixture resets the recorded state between tests so edges
from one test's lock instances never clutter another's report.
"""

from __future__ import annotations

from typing import Iterator

import pytest

from repro.analysis import sanitizer

__all__ = ["pytest_addoption", "pytest_configure"]


def pytest_addoption(parser: "pytest.Parser") -> None:
    group = parser.getgroup("repro")
    group.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help=(
            "run under the repro runtime sanitizer: lock-order recording "
            "with deadlock detection, RNG consumption accounting, and "
            "array contract checks (shape-symbol binding + no-alloc "
            "accounting; see docs/static-analysis.md)"
        ),
    )


def pytest_configure(config: "pytest.Config") -> None:
    if config.getoption("--sanitize"):
        sanitizer.enable()


def pytest_report_header(config: "pytest.Config") -> "list[str]":
    if sanitizer.is_enabled():
        return [
            "repro sanitizer: ON (lock-order DAG + RNG shadow accounting + "
            "event-loop blocking + segment lifecycle + array shape/alloc "
            "accounting)"
        ]
    return []


@pytest.fixture(autouse=True)
def _sanitizer_isolation() -> Iterator[None]:
    """Per-test reset of the global monitors/registries when sanitizing.

    After the test the loop monitor's recorded violations are raised —
    a blocked event loop cannot raise in place (``Handle._run`` runs
    inside the loop's dispatch machinery), so teardown is the quiesce
    point.  Segment accounting is deliberately *not* auto-asserted:
    crash-isolation tests park leaked segments by design; suites that
    expect a clean shutdown call ``SEGMENTS.assert_all_released()``
    themselves.
    """
    if sanitizer.is_enabled():
        sanitizer.reset()
    yield
    if sanitizer.is_enabled():
        sanitizer.LOOP_MONITOR.check()
