"""Runtime concurrency & determinism sanitizer (``REPRO_SANITIZE=1``).

The static rules (R1, R6–R8) prove what they can from source; this
package checks the remaining gap at runtime, the way ThreadSanitizer
does for C++: by interposing on the primitives themselves.

Five checkers, all zero-cost when disabled (the factories in
:mod:`repro.utils.sync` and the hooks in :mod:`repro.utils.rng` and
:mod:`repro.shard.memory` hand out plain primitives unless the switch
is on):

- **lock order** (:mod:`.locks`) — every sanitized lock acquisition
  maintains the thread's acquisition stack and a global lock-order DAG;
  an acquisition that would close a cycle raises
  :class:`SanitizerError` naming both acquisition stacks, *before*
  blocking, so provoked inversions fail fast instead of deadlocking;
- **RNG streams** (:mod:`.rng`) — seeded generators are shadowed with
  consumption accounting: cross-thread draws on one instance and
  divergent consumption of one derived child seed are violations;
- **event-loop blocking** (:mod:`.eventloop`) — every loop callback is
  timed through ``Handle._run``; one that crosses the slow-callback
  threshold is recorded and raised at the next quiesce point
  (:meth:`~repro.analysis.sanitizer.eventloop.EventLoopMonitor.check`,
  called per-test by the pytest plugin) — the runtime side of R9;
- **segment lifecycle** (:mod:`.segments`) — every shared-memory
  export/attach is registered with its creation stack and removed on
  close; suites that expect a clean shutdown call
  ``SEGMENTS.assert_all_released()`` — the runtime side of R10;
- **array allocation & shape symbols** (:mod:`.arrays` +
  :mod:`repro.utils.contracts`) — ``@contract`` shape symbols
  (``int64[W]``) must bind one consistent extent per call, and kernels
  marked ``# no-alloc`` must be steady-state allocation-free after one
  warm-up call (``np.concatenate``/``np.append``/``np.copy``/... are
  counted while the kernel is on the stack) — the runtime side of
  R13/R15.

Enable with the environment variable (read at process start, so worker
processes inherit it), programmatically via :func:`enable`, or for a
test run via the bundled pytest plugin: ``pytest --sanitize``.

Locks and generators created *before* enabling stay unsanitized — turn
the switch on before constructing the objects under test (the pytest
plugin enables during ``pytest_configure``, ahead of collection).
"""

from __future__ import annotations

from repro.analysis.sanitizer.arrays import ALLOC_MONITOR, ArrayAllocMonitor
from repro.analysis.sanitizer.errors import SanitizerError
from repro.analysis.sanitizer.eventloop import LOOP_MONITOR, EventLoopMonitor
from repro.analysis.sanitizer.locks import (
    MONITOR,
    LockOrderMonitor,
    SanitizedLock,
    SanitizedRLock,
)
from repro.analysis.sanitizer.rng import (
    SHADOW_REGISTRY,
    RngShadowRegistry,
    ShadowGenerator,
    shadow_rng,
)
from repro.analysis.sanitizer.segments import SEGMENTS, SegmentRegistry
from repro.utils import sync as _sync

__all__ = [
    "ALLOC_MONITOR",
    "LOOP_MONITOR",
    "MONITOR",
    "SEGMENTS",
    "SHADOW_REGISTRY",
    "ArrayAllocMonitor",
    "EventLoopMonitor",
    "LockOrderMonitor",
    "RngShadowRegistry",
    "SanitizedLock",
    "SanitizedRLock",
    "SanitizerError",
    "SegmentRegistry",
    "ShadowGenerator",
    "disable",
    "enable",
    "is_enabled",
    "reset",
    "shadow_rng",
]


def enable() -> None:
    """Turn the sanitizer on: locks and generators created from now on
    through the project factories are order-/consumption-checked, loop
    callbacks are timed, and segment open/close is accounted."""
    _sync._set_active(True)
    LOOP_MONITOR.install()


def disable() -> None:
    """Turn the sanitizer off (existing proxies keep reporting)."""
    _sync._set_active(False)
    LOOP_MONITOR.uninstall()
    ALLOC_MONITOR.uninstall()


def is_enabled() -> bool:
    return _sync.sanitizer_active()


def reset() -> None:
    """Forget recorded lock-order edges, RNG accounting, loop-callback
    violations, segment records, and no-alloc warm-up state.

    Call between tests: edges are per lock *instance*, so state from a
    finished test can only leak (never alias), but unbounded growth and
    confusing reports are worth preventing.
    """
    MONITOR.reset()
    SHADOW_REGISTRY.reset()
    LOOP_MONITOR.reset()
    SEGMENTS.reset()
    ALLOC_MONITOR.reset()
