"""Runtime concurrency & determinism sanitizer (``REPRO_SANITIZE=1``).

The static rules (R1, R6–R8) prove what they can from source; this
package checks the remaining gap at runtime, the way ThreadSanitizer
does for C++: by interposing on the primitives themselves.

Two checkers, both zero-cost when disabled (the factories in
:mod:`repro.utils.sync` and the hooks in :mod:`repro.utils.rng` hand
out plain primitives unless the switch is on):

- **lock order** (:mod:`.locks`) — every sanitized lock acquisition
  maintains the thread's acquisition stack and a global lock-order DAG;
  an acquisition that would close a cycle raises
  :class:`SanitizerError` naming both acquisition stacks, *before*
  blocking, so provoked inversions fail fast instead of deadlocking;
- **RNG streams** (:mod:`.rng`) — seeded generators are shadowed with
  consumption accounting: cross-thread draws on one instance and
  divergent consumption of one derived child seed are violations.

Enable with the environment variable (read at process start, so worker
processes inherit it), programmatically via :func:`enable`, or for a
test run via the bundled pytest plugin: ``pytest --sanitize``.

Locks and generators created *before* enabling stay unsanitized — turn
the switch on before constructing the objects under test (the pytest
plugin enables during ``pytest_configure``, ahead of collection).
"""

from __future__ import annotations

from repro.analysis.sanitizer.errors import SanitizerError
from repro.analysis.sanitizer.locks import (
    MONITOR,
    LockOrderMonitor,
    SanitizedLock,
    SanitizedRLock,
)
from repro.analysis.sanitizer.rng import (
    SHADOW_REGISTRY,
    RngShadowRegistry,
    ShadowGenerator,
    shadow_rng,
)
from repro.utils import sync as _sync

__all__ = [
    "MONITOR",
    "SHADOW_REGISTRY",
    "LockOrderMonitor",
    "RngShadowRegistry",
    "SanitizedLock",
    "SanitizedRLock",
    "SanitizerError",
    "ShadowGenerator",
    "disable",
    "enable",
    "is_enabled",
    "reset",
    "shadow_rng",
]


def enable() -> None:
    """Turn the sanitizer on: locks and generators created from now on
    through the project factories are order-/consumption-checked."""
    _sync._set_active(True)


def disable() -> None:
    """Turn the sanitizer off (existing proxies keep reporting)."""
    _sync._set_active(False)


def is_enabled() -> bool:
    return _sync.sanitizer_active()


def reset() -> None:
    """Forget recorded lock-order edges and RNG accounting.

    Call between tests: edges are per lock *instance*, so state from a
    finished test can only leak (never alias), but unbounded growth and
    confusing reports are worth preventing.
    """
    MONITOR.reset()
    SHADOW_REGISTRY.reset()
