"""Consumption-accounting shadows for seeded generators.

The batch-estimate guarantee of ``docs/performance.md`` — scores are a
deterministic function of ``(seed, v, R)``, independent of batch
composition — rests on two runtime facts the type system cannot state:

1. **one stream, one thread** — a :class:`numpy.random.Generator` is
   stateful; two threads drawing from the same instance interleave
   nondeterministically, silently breaking replay;
2. **positional uniform consumption** — every generator materialised
   from a *derived* child seed (:func:`repro.utils.rng.derive_seed`)
   must consume the same draw sequence wherever it is materialised.
   If the array kernel and the reference kernel (or two call sites that
   accidentally alias a child seed) disagree about a child stream's
   draw prefix, their results are not comparable and the bit-identical
   guarantees are fiction.

When sanitizing, :func:`repro.utils.rng.ensure_rng` returns a
:class:`ShadowGenerator` — a real ``numpy.random.Generator`` subclass
sharing the same bit generator (so the produced numbers are identical)
that records every draw into the process-global :class:`RngShadowRegistry`
before delegating.  :func:`repro.utils.rng.derive_seed` notes each child
seed it mints, which is how the registry distinguishes derived streams
(replay-checked positionally) from root seeds (reused freely across
independent components).

Violations raise :class:`SanitizerError` with the first and the
conflicting consumption stacks.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.sanitizer.errors import SanitizerError
from repro.analysis.sanitizer.locks import _capture_stack

__all__ = [
    "DrawRecord",
    "RngShadowRegistry",
    "SHADOW_REGISTRY",
    "ShadowGenerator",
    "note_derived_seed",
    "shadow_rng",
]


def _size_elements(size: object) -> int:
    """Number of scalar draws a ``size`` argument denotes."""
    if size is None:
        return 1
    if isinstance(size, (int, np.integer)):
        return int(size)
    try:
        total = 1
        for dim in size:  # type: ignore[union-attr]
            total *= int(dim)
        return total
    except TypeError:
        return 1


class DrawRecord:
    """One recorded draw: method, element count, and the drawing thread."""

    __slots__ = ("method", "elements", "thread_id", "stack")

    def __init__(self, method: str, elements: int, thread_id: int, stack: str) -> None:
        self.method = method
        self.elements = elements
        self.thread_id = thread_id
        self.stack = stack

    def signature(self) -> Tuple[str, int]:
        return (self.method, self.elements)

    def __repr__(self) -> str:
        return f"DrawRecord({self.method}, n={self.elements})"


class RngShadowRegistry:
    """Process-global accounting of shadowed generator consumption.

    Two invariants, with different strictness:

    - cross-thread draws on one generator instance are **always** a
      violation (no legal program does that with a seeded stream);
    - positional replay (two materialisations of the same derived child
      seed must make the identical draw sequence) is checked only inside
      a :meth:`strict_replay` scope.  Outside one it would false-positive
      on legal reuse: a full rebuild after graph edits deliberately
      replays the same derived seeds against a *different* graph, so
      draw sizes differ by design.  Inside a scope — e.g. scoring the
      same candidates through both kernels, or the same batch in two
      compositions — divergence is exactly the stream-aliasing bug the
      batch-independence guarantee forbids.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        #: child seeds minted by derive_seed while sanitizing.
        self._derived: Dict[int, str] = {}
        #: derived seed -> reference draw sequence (first materialisation).
        self._reference: Dict[int, List[DrawRecord]] = {}
        #: draws per generator key (derived seeds only), across instances.
        self._consumed: Dict[int, int] = {}
        self._strict = False

    # -- derive_seed hook ----------------------------------------------

    def note_derived(self, child: int) -> None:
        """Record that ``child`` is a derived stream seed."""
        with self._mu:
            if child not in self._derived:
                self._derived[child] = _capture_stack()

    def is_derived(self, seed: int) -> bool:
        with self._mu:
            return seed in self._derived

    # -- draw recording -------------------------------------------------

    def record(self, shadow: "ShadowGenerator", method: str, size: object) -> None:
        record = DrawRecord(
            method, _size_elements(size), threading.get_ident(), _capture_stack()
        )
        shadow._check_thread(record)
        key = shadow._seed_key
        if key is None:
            return
        with self._mu:
            if key not in self._derived:
                return
            self._consumed[key] = self._consumed.get(key, 0) + record.elements
            reference = self._reference.setdefault(key, [])
            position = shadow._advance_position()
            if position < len(reference):
                expected = reference[position]
                if self._strict and expected.signature() != record.signature():
                    raise SanitizerError(
                        "derived RNG stream consumed divergently: child seed "
                        f"{key} draw #{position} was "
                        f"{expected.method}(n={expected.elements}) on first "
                        f"materialisation but {record.method}(n={record.elements}) "
                        "now — two consumers are aliasing one derived stream, "
                        "so positional-uniform consumption (and batch-score "
                        "replay) is broken",
                        first_stack=expected.stack,
                        second_stack=record.stack,
                    )
            else:
                reference.append(record)

    # -- strict replay scope --------------------------------------------

    @contextmanager
    def strict_replay(self) -> Iterator[None]:
        """Within this scope, divergent consumption of one derived child
        seed raises.  Entering clears recorded reference sequences so the
        scope compares only materialisations it witnessed itself."""
        with self._mu:
            self._reference.clear()
            self._strict = True
        try:
            yield
        finally:
            with self._mu:
                self._strict = False

    # -- accounting surface for tests -----------------------------------

    def consumption(self, seed: int) -> int:
        """Total scalar draws recorded against derived seed ``seed``."""
        with self._mu:
            return self._consumed.get(seed, 0)

    def draw_log(self, seed: int) -> List[Tuple[str, int]]:
        """The reference draw sequence of derived seed ``seed``."""
        with self._mu:
            return [r.signature() for r in self._reference.get(seed, [])]

    def derived_seeds(self) -> List[int]:
        with self._mu:
            return sorted(self._derived)

    def reset(self) -> None:
        with self._mu:
            self._derived.clear()
            self._reference.clear()
            self._consumed.clear()


#: The process-global registry :func:`shadow_rng` reports to.
SHADOW_REGISTRY = RngShadowRegistry()


class ShadowGenerator(np.random.Generator):
    """A recording ``numpy.random.Generator`` (same stream, same numbers).

    Subclasses the real Generator around the same bit generator, so
    ``isinstance`` checks and the produced values are identical to the
    unshadowed path; draw methods record into the registry first.
    """

    def __init__(
        self,
        bit_generator: np.random.BitGenerator,
        seed_key: Optional[int],
        registry: Optional[RngShadowRegistry] = None,
    ) -> None:
        super().__init__(bit_generator)
        self._seed_key = seed_key
        self._registry = registry or SHADOW_REGISTRY
        self._position = 0
        self._thread_id: Optional[int] = None
        self._first_draw: Optional[DrawRecord] = None

    # -- invariant helpers ---------------------------------------------

    def _advance_position(self) -> int:
        position = self._position
        self._position += 1
        return position

    def _check_thread(self, record: DrawRecord) -> None:
        if self._thread_id is None:
            self._thread_id = record.thread_id
            self._first_draw = record
        elif record.thread_id != self._thread_id:
            first = self._first_draw
            raise SanitizerError(
                "seeded Generator shared across threads: instance with seed "
                f"key {self._seed_key!r} first drew on thread "
                f"{self._thread_id} and is now drawing on thread "
                f"{record.thread_id} — interleaved draws break seeded replay; "
                "derive one child seed per worker instead "
                "(repro.utils.rng.derive_seed)",
                first_stack=first.stack if first else "",
                second_stack=record.stack,
            )

    def _record(self, method: str, size: object) -> None:
        self._registry.record(self, method, size)

    # -- recorded draw methods -----------------------------------------
    # Only the sampling surface this codebase uses; anything else still
    # works (inherited) but goes unrecorded.

    def random(self, size=None, *args, **kwargs):  # type: ignore[no-untyped-def]
        self._record("random", size)
        return super().random(size, *args, **kwargs)

    def integers(self, low, high=None, size=None, *args, **kwargs):  # type: ignore[no-untyped-def]
        self._record("integers", size)
        return super().integers(low, high, size, *args, **kwargs)

    def uniform(self, low=0.0, high=1.0, size=None):  # type: ignore[no-untyped-def]
        self._record("uniform", size)
        return super().uniform(low, high, size)

    def standard_normal(self, size=None, *args, **kwargs):  # type: ignore[no-untyped-def]
        self._record("standard_normal", size)
        return super().standard_normal(size, *args, **kwargs)

    def normal(self, loc=0.0, scale=1.0, size=None):  # type: ignore[no-untyped-def]
        self._record("normal", size)
        return super().normal(loc, scale, size)

    def choice(self, a, size=None, *args, **kwargs):  # type: ignore[no-untyped-def]
        self._record("choice", size)
        return super().choice(a, size, *args, **kwargs)

    def permutation(self, x, *args, **kwargs):  # type: ignore[no-untyped-def]
        self._record("permutation", None)
        return super().permutation(x, *args, **kwargs)

    def shuffle(self, x, *args, **kwargs):  # type: ignore[no-untyped-def]
        self._record("shuffle", None)
        return super().shuffle(x, *args, **kwargs)


def shadow_rng(seed: Union[None, int]) -> np.random.Generator:
    """A shadowed generator for ``seed`` (int or None), same stream as
    ``np.random.default_rng(seed)``."""
    plain = np.random.default_rng(seed)
    key = int(seed) if isinstance(seed, (int, np.integer)) else None
    return ShadowGenerator(plain.bit_generator, key)


def note_derived_seed(child: int) -> None:
    """Hook for :func:`repro.utils.rng.derive_seed` while sanitizing."""
    SHADOW_REGISTRY.note_derived(int(child))
