"""Shared-memory segment lifecycle accounting: the runtime side of R10.

R10 proves that every :class:`SharedArrayBundle` a function opens is
closed, escaped, or ownership-transferred on every *syntactic* path;
this registry accounts for the segments a process actually mapped.
:mod:`repro.shard.memory` reports every export/attach and every close
here (only while the sanitizer is active — the hooks are behind
``sanitizer_active()``, so production runs pay nothing), each opening
recorded with its creation stack so a leak report names the allocation
site, not just the segment.

Unlike the lock monitor this registry never raises on its own:
existing crash-isolation tests *deliberately* park segments (a worker
killed mid-epoch leaves its attachment behind by design), so an
auto-assert at test teardown would flag intended behaviour.  Callers
that expect a clean shutdown — the serve/shard acceptance suites, the
epoch-swap tests — call :func:`SegmentRegistry.assert_all_released`
explicitly at their quiesce point.
"""

from __future__ import annotations

import threading
import traceback
from typing import Dict, List, NamedTuple

from repro.analysis.sanitizer.errors import SanitizerError

__all__ = ["SEGMENTS", "SegmentRegistry"]


class _SegmentRecord(NamedTuple):
    name: str
    owner: bool
    nbytes: int
    stack: str


class SegmentRegistry:
    """Live shared-memory mappings of this process, by segment name.

    One record per (process, segment) mapping: the exporting side and an
    attaching side of the same segment are distinct mappings in distinct
    processes, so a plain name key is unambiguous within a registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._live: Dict[str, _SegmentRecord] = {}

    def note_open(self, name: str, owner: bool, nbytes: int) -> None:
        record = _SegmentRecord(
            name=name,
            owner=owner,
            nbytes=nbytes,
            stack="".join(traceback.format_stack(limit=12)),
        )
        with self._lock:
            self._live[name] = record

    def note_close(self, name: str) -> None:
        with self._lock:
            # A segment opened before the sanitizer was enabled is
            # unknown here; ignoring it beats a spurious report.
            self._live.pop(name, None)

    def live(self) -> List[str]:
        with self._lock:
            return sorted(self._live)

    def assert_all_released(self) -> None:
        """Raise :class:`SanitizerError` naming every unreleased mapping."""
        with self._lock:
            leaked = sorted(self._live.values())
        if not leaked:
            return
        lines = [
            f"  - {rec.name} ({'owner' if rec.owner else 'attached'}, "
            f"{rec.nbytes} bytes)"
            for rec in leaked
        ]
        raise SanitizerError(
            f"{len(leaked)} shared-memory mapping(s) never released:\n"
            + "\n".join(lines),
            first_stack=leaked[0].stack,
        )

    def reset(self) -> None:
        with self._lock:
            self._live.clear()


#: process-global registry fed by :mod:`repro.shard.memory`.
SEGMENTS = SegmentRegistry()
