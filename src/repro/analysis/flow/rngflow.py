"""R7 — RNG-stream purity across thread and process boundaries.

A :class:`numpy.random.Generator` is single-threaded mutable state.
The parallel layer's contract (PR 4) is that a *seed*, never a live
generator, crosses a dispatch boundary: ``top_k_all_parallel``
canonicalises ``SeedLike`` to an int with ``derive_seed`` before
building ``initargs``, and every worker materialises its own stream.
Shipping a generator instead compiles and runs — pickling silently
copies the state, workers draw identical "random" numbers, and the
variance guarantees of the estimator quietly die.

The static check is interprocedural taint:

- **sources** — calls to ``ensure_rng`` / ``spawn_rngs`` /
  ``default_rng`` / ``shadow_rng``, and parameters annotated as
  ``Generator`` (a ``SeedLike`` annotation is *not* a source: that type
  exists precisely to be canonicalised);
- **sanitizers** — ``derive_seed(...)`` and ``int(...)``;
- **sinks** — executor/pool dispatch (``submit``, ``map`` on a
  pool/executor receiver, ``run_in_executor``, ``apply_async``, ...),
  ``Thread``/``Process`` construction, and pool ``initargs``.

A finding fires when a tainted expression reaches a sink directly, or
is passed to a project function whose parameter provably reaches a
sink (summaries computed to fixpoint over the call graph).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.graph import FunctionInfo, ProjectIndex, flow_index
from repro.analysis.flow.taint import LocalTaint, TaintDomain
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["RngPurityRule"]

#: attribute calls that hand work to another thread/process.
_DISPATCH_METHODS = frozenset(
    {"submit", "apply_async", "map_async", "starmap", "imap", "imap_unordered"}
)
#: constructors that start concurrent execution.
_DISPATCH_CTORS = frozenset(
    {"Thread", "Process", "ProcessPoolExecutor", "ThreadPoolExecutor", "Pool"}
)


class _RngDomain(TaintDomain):
    source_calls = frozenset({"ensure_rng", "spawn_rngs", "default_rng", "shadow_rng"})
    sanitizer_calls = frozenset({"derive_seed", "int"})


def _generator_params(info: FunctionInfo) -> Set[str]:
    """Parameters whose annotation names ``Generator`` explicitly."""
    return {
        param
        for param, classes in info.param_classes.items()
        if "Generator" in classes
    }


def _dispatch_args(call: ast.Call) -> Optional[Tuple[str, List[ast.expr]]]:
    """``(description, argument expressions)`` when ``call`` is a
    thread/process dispatch boundary, else None."""
    func = call.func
    exprs: List[ast.expr] = []
    if isinstance(func, ast.Attribute):
        method = func.attr
        if method in _DISPATCH_METHODS or method == "run_in_executor":
            exprs = [*call.args, *(kw.value for kw in call.keywords)]
            return f".{method}()", exprs
        if method == "map":
            chain = attribute_chain(func.value)
            receiver = (chain[-1] if chain else "").lower()
            if "pool" in receiver or "executor" in receiver:
                exprs = [*call.args, *(kw.value for kw in call.keywords)]
                return ".map()", exprs
        if method in _DISPATCH_CTORS:
            name: Optional[str] = method
        else:
            return None
    elif isinstance(func, ast.Name):
        name = func.id
    else:
        return None
    if name not in _DISPATCH_CTORS:
        return None
    exprs = list(call.args)
    for kw in call.keywords:
        if kw.arg in ("target", "args", "kwargs", "initargs", "initializer"):
            exprs.append(kw.value)
    return f"{name}(...)", exprs


def _map_call_args(
    call: ast.Call, callee: FunctionInfo
) -> Iterator[Tuple[str, ast.expr]]:
    """Pair each argument with the callee parameter it binds to."""
    params = callee.params
    bound = callee.cls is not None and (
        isinstance(call.func, ast.Attribute) or callee.name == "__init__"
    )
    offset = 1 if bound and params and params[0] in ("self", "cls") else 0
    for position, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            continue
        index = position + offset
        if index < len(params):
            yield params[index], arg
    for keyword in call.keywords:
        if keyword.arg is not None:
            yield keyword.arg, keyword.value


class RngPurityRule(Rule):
    id = "R7"
    name = "rng-purity"
    summary = (
        "a live numpy Generator must not cross a thread/process boundary — "
        "canonicalise to a seed with `derive_seed` and re-materialise in the "
        "worker"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    # ------------------------------------------------------------------

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        index = flow_index(project)
        domain = _RngDomain()
        param_sinks = self._param_sink_summaries(index, domain)

        for info in index.iter_functions():
            seeds = _generator_params(info)
            taint = LocalTaint(info, domain, seeds)
            for finding in self._sink_hits(index, info, taint, param_sinks):
                self._findings.setdefault(info.rel, []).append(finding)

    def _param_sink_summaries(
        self, index: ProjectIndex, domain: _RngDomain
    ) -> Dict[str, Set[str]]:
        """Which parameters of which functions reach a dispatch sink."""
        summaries: Dict[str, Set[str]] = {}
        changed = True
        while changed:
            changed = False
            for info in index.iter_functions():
                known = summaries.setdefault(info.qual, set())
                for param in info.params:
                    if param in ("self", "cls") or param in known:
                        continue
                    taint = LocalTaint(info, domain, {param}, use_sources=False)
                    if self._reaches_sink(index, info, taint, summaries):
                        known.add(param)
                        changed = True
        return summaries

    def _reaches_sink(
        self,
        index: ProjectIndex,
        info: FunctionInfo,
        taint: LocalTaint,
        param_sinks: Dict[str, Set[str]],
    ) -> bool:
        for site in index.calls.get(info.qual, ()):
            dispatch = _dispatch_args(site.node)
            if dispatch is not None and any(
                taint.expr_tainted(expr) for expr in dispatch[1]
            ):
                return True
            if site.callee is None:
                continue
            callee = index.functions.get(site.callee)
            if callee is None:
                continue
            sink_params = param_sinks.get(site.callee, set())
            for param, arg in _map_call_args(site.node, callee):
                if param in sink_params and taint.expr_tainted(arg):
                    return True
        return False

    def _sink_hits(
        self,
        index: ProjectIndex,
        info: FunctionInfo,
        taint: LocalTaint,
        param_sinks: Dict[str, Set[str]],
    ) -> Iterator[Finding]:
        if not taint.tainted and not self._has_source_call(index, info, taint):
            return
        short = info.qual.split("::", 1)[1]
        for site in index.calls.get(info.qual, ()):
            dispatch = _dispatch_args(site.node)
            if dispatch is not None:
                desc, exprs = dispatch
                if any(taint.expr_tainted(expr) for expr in exprs):
                    yield Finding(
                        rule=self.id,
                        path=info.rel,
                        line=site.node.lineno,
                        col=site.node.col_offset,
                        message=(
                            f"seeded Generator flows into `{desc}` in `{short}` — "
                            "a live RNG stream must not cross a thread/process "
                            "boundary; pass `derive_seed(...)` and re-materialise "
                            "in the worker (RNG-stream purity)"
                        ),
                    )
                continue
            if site.callee is None:
                continue
            callee = index.functions.get(site.callee)
            if callee is None:
                continue
            sink_params = param_sinks.get(site.callee, set())
            if not sink_params:
                continue
            callee_short = site.callee.split("::", 1)[1]
            for param, arg in _map_call_args(site.node, callee):
                if param in sink_params and taint.expr_tainted(arg):
                    yield Finding(
                        rule=self.id,
                        path=info.rel,
                        line=site.node.lineno,
                        col=site.node.col_offset,
                        message=(
                            f"seeded Generator passed to `{callee_short}(..., "
                            f"{param}=...)`, whose `{param}` reaches a "
                            "thread/process dispatch — canonicalise with "
                            "`derive_seed(...)` before the call (RNG-stream "
                            "purity)"
                        ),
                    )

    @staticmethod
    def _has_source_call(
        index: ProjectIndex, info: FunctionInfo, taint: LocalTaint
    ) -> bool:
        """Whether any dispatch argument is a direct source call —
        covers `pool.submit(f, ensure_rng(seed))` with no named binding."""
        for site in index.calls.get(info.qual, ()):
            if taint.domain.is_source_call(site.node):
                return True
        return False

    # ------------------------------------------------------------------

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
