"""Abstract interpretation of numpy shapes and dtypes (R13–R16 core).

The array kernels pass raw ``np.ndarray`` payloads across module
boundaries; a wrong dtype or rank does not crash, it silently degrades
(a platform-``int_`` index array truncates on Windows, a broadcast
mismatch zero-pads a bound instead of failing).  This module gives the
flow rules the facts those bugs hide behind: for every function in the
:class:`~repro.analysis.flow.graph.ProjectIndex`, an abstract
interpreter runs the body over a three-point domain per value —

- **dtype** — a canonical numpy dtype name, or unknown;
- **shape** — a tuple of dims, each a concrete ``int``, a *symbol*
  (the spelling of a shape variable or a ``@contract`` shape symbol
  like ``W``), or unknown (``None``); the tuple's length is the rank;
- **origin** — how the value was produced, for the few producers whose
  *defaults* are the hazard: ``"arange-default"`` (``np.arange`` with
  no dtype — platform ``np.int_``, 32-bit on Windows) and
  ``"alloc-default"`` (``np.zeros``/``ones``/``empty`` with no dtype —
  float64, poison as an index).

Facts come from ``@contract`` declarations (parsed statically, same
grammar the runtime enforces), numpy constructor calls, ``.astype``,
shape-preserving transforms, and — interprocedurally — per-function
*return summaries* iterated to fixpoint over the call graph: a call to
a project function whose return fact is known propagates that fact to
the caller, so ``walk_matrix``'s int64 rank-2 result is a fact at every
call site without any annotation there.

Everything is precision-first, the bargain the whole flow package
strikes: a fact is only recorded when it is provable from the source;
join points (branches, loops, multiple returns) degrade disagreeing
components to unknown rather than guess.  The rules built on top (R13
shape conformance, R14 index-dtype discipline, R15 hot-path allocation
hygiene, R16 contract drift) therefore only fire on conflicts between
two *known* facts.

Two header-comment markers are parsed here alongside the facts, on the
decorator/``def`` lines of a function (the same grammar
:func:`repro.utils.contracts.contract` reads at decoration time):

- ``# hot-path`` — the function is a steady-state kernel; R15 flags
  redundant-copy allocations inside its loops;
- ``# no-alloc`` — additionally, the runtime sanitizer asserts the
  kernel performs zero tracked allocations after warm-up.
"""

from __future__ import annotations

import ast
import re
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.flow.graph import FunctionInfo, ProjectIndex, flow_index
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = [
    "ArrayFact",
    "ArrayFlowIndex",
    "FunctionFacts",
    "StaticContract",
    "StaticSpec",
    "arrayflow_index",
    "broadcast_conflict",
    "header_lines",
    "marked_hot_path",
    "parse_contract_decorator",
]

#: one dimension: concrete extent, symbol spelling, or unknown.
Dim = Union[int, str, None]
Shape = Tuple[Dim, ...]

_HOT_PATH_RE = re.compile(r"(?:^|\s)#\s*hot-path\s*$")

#: dtype names a spec/constructor may state (mirrors contracts.KNOWN_DTYPES
#: without importing the runtime module into every analysis pass).
_KNOWN_DTYPES = frozenset(
    {
        "bool",
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        "float16", "float32", "float64",
        "complex64", "complex128",
    }
)

#: ``np.<name>`` dtype spellings that are platform-dependent C types.
PLATFORM_INT_NAMES = frozenset({"int_", "intc", "long", "longlong", "short"})

#: constructors whose result fact we model (shape from first arg).
_ALLOC_CTORS = frozenset({"zeros", "ones", "empty"})
#: shape-preserving unary module functions.
_PRESERVING = frozenset({"sort", "copy", "ascontiguousarray", "abs"})
#: rank-1-producing module functions (shape extent unknown).
_RANK1 = frozenset({"flatnonzero", "bincount", "diff", "ravel", "unique"})
#: rng method names that draw float64 arrays shaped by their first arg.
_RNG_METHODS = frozenset({"random", "standard_normal", "uniform"})

_SPEC_RE = re.compile(r"^(?P<dtype>[a-z0-9_]+)(?:\[(?P<shape>[^\[\]]+)\])?$")
_NDIM_RE = re.compile(r"^(?P<ndim>\d+)d$")
_DIM_RE = re.compile(r"^(?:[A-Za-z_][A-Za-z0-9_]*|\d+)$")


class ArrayFact:
    """What the interpreter knows about one array-valued expression."""

    __slots__ = ("dtype", "shape", "origin")

    def __init__(
        self,
        dtype: Optional[str] = None,
        shape: Optional[Shape] = None,
        origin: Optional[str] = None,
    ) -> None:
        self.dtype = dtype
        self.shape = shape
        self.origin = origin

    @property
    def rank(self) -> Optional[int]:
        return None if self.shape is None else len(self.shape)

    def known(self) -> bool:
        return self.dtype is not None or self.shape is not None

    def describe(self) -> str:
        dims = (
            "?" if self.shape is None
            else "(" + ", ".join("?" if d is None else str(d) for d in self.shape) + ")"
        )
        return f"{self.dtype or '?'}{dims if self.shape is not None else ''}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ArrayFact {self.describe()} origin={self.origin}>"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayFact)
            and self.dtype == other.dtype
            and self.shape == other.shape
            and self.origin == other.origin
        )

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.dtype, self.shape, self.origin))


def _join(a: Optional[ArrayFact], b: Optional[ArrayFact]) -> Optional[ArrayFact]:
    """Least upper bound: components that disagree become unknown."""
    if a is None or b is None:
        return None
    dtype = a.dtype if a.dtype == b.dtype else None
    origin = a.origin if a.origin == b.origin else None
    shape: Optional[Shape] = None
    if a.shape is not None and b.shape is not None and len(a.shape) == len(b.shape):
        shape = tuple(
            da if da == db else None for da, db in zip(a.shape, b.shape)
        )
    fact = ArrayFact(dtype=dtype, shape=shape, origin=origin)
    return fact if fact.known() else None


def broadcast_conflict(
    left: Shape, right: Shape, symbols: Set[str]
) -> Optional[Tuple[int, Dim, Dim]]:
    """First broadcasting conflict between two shapes, or None.

    Axes are aligned from the trailing end, numpy-style.  A conflict is
    two *concrete* extents that differ with neither equal to 1, or two
    distinct ``@contract`` shape symbols (``symbols``) on one axis —
    variable-name symbols are propagation devices, not constraints, so
    two different variable spellings never conflict.  Returns
    ``(axis-from-the-right, left dim, right dim)``.
    """
    for offset in range(1, min(len(left), len(right)) + 1):
        da, db = left[-offset], right[-offset]
        if isinstance(da, int) and isinstance(db, int):
            if da != db and da != 1 and db != 1:
                return (offset, da, db)
        elif (
            isinstance(da, str)
            and isinstance(db, str)
            and da != db
            and da in symbols
            and db in symbols
        ):
            return (offset, da, db)
    return None


# ----------------------------------------------------------------------
# Static @contract view
# ----------------------------------------------------------------------


class StaticSpec:
    """One parsed spec string, as the analyzer sees it (no runtime import)."""

    __slots__ = ("dtype", "ndim", "dims")

    def __init__(
        self, dtype: str, ndim: Optional[int], dims: Optional[Tuple[Union[int, str], ...]]
    ) -> None:
        self.dtype = dtype
        self.ndim = ndim
        self.dims = dims

    def describe(self) -> str:
        if self.dims is not None:
            return f"{self.dtype}[{', '.join(str(d) for d in self.dims)}]"
        return self.dtype if self.ndim is None else f"{self.dtype}[{self.ndim}d]"

    def symbols(self) -> Tuple[str, ...]:
        if self.dims is None:
            return ()
        return tuple(d for d in self.dims if isinstance(d, str))

    def fact(self) -> ArrayFact:
        shape: Optional[Shape] = None
        if self.dims is not None:
            shape = tuple(self.dims)
        elif self.ndim is not None:
            shape = (None,) * self.ndim
        return ArrayFact(dtype=self.dtype, shape=shape)


def _parse_spec(text: str) -> Optional[StaticSpec]:
    match = _SPEC_RE.match(text)
    if match is None or match.group("dtype") not in _KNOWN_DTYPES:
        return None
    dtype, shape = match.group("dtype"), match.group("shape")
    if shape is None:
        return StaticSpec(dtype, None, None)
    ndim_match = _NDIM_RE.match(shape.strip())
    if ndim_match is not None:
        return StaticSpec(dtype, int(ndim_match.group("ndim")), None)
    dims: List[Union[int, str]] = []
    for token in shape.split(","):
        token = token.strip()
        if not token or _DIM_RE.match(token) is None:
            return None
        dims.append(int(token) if token.isdigit() else token)
    return StaticSpec(dtype, len(dims), tuple(dims))


class StaticContract:
    """The ``@contract(...)`` declaration on one function, parsed."""

    __slots__ = ("node", "params", "returns")

    def __init__(self, node: ast.Call) -> None:
        self.node = node
        self.params: Dict[str, StaticSpec] = {}
        self.returns: Optional[StaticSpec] = None

    def symbols(self) -> Set[str]:
        out: Set[str] = set()
        for spec in self.params.values():
            out.update(spec.symbols())
        if self.returns is not None:
            out.update(self.returns.symbols())
        return out


def parse_contract_decorator(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> Optional[StaticContract]:
    """The :class:`StaticContract` of a decorated function, if any.

    Only literal string specs are readable (R5 flags anything else);
    malformed specs are skipped silently here — declaring them invalid
    is R5's job, consuming them is ours.
    """
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        name = (
            func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None
        )
        if name != "contract":
            continue
        contract = StaticContract(decorator)
        for kw in decorator.keywords:
            if kw.arg is None or not (
                isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str)
            ):
                continue
            spec = _parse_spec(kw.value.value)
            if spec is None:
                continue
            if kw.arg == "returns":
                contract.returns = spec
            else:
                contract.params[kw.arg] = spec
        return contract
    return None


# ----------------------------------------------------------------------
# Header markers
# ----------------------------------------------------------------------


def header_lines(source: SourceFile, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> List[str]:
    """Source lines of the decorators + signature, before the body."""
    start = min(
        [d.lineno for d in node.decorator_list] + [node.lineno]
    )
    end = node.body[0].lineno - 1 if node.body else node.lineno
    return source.lines[start - 1 : end]


def marked_hot_path(source: SourceFile, node: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    """Whether the function header carries a ``# hot-path`` comment."""
    return any(_HOT_PATH_RE.search(line) for line in header_lines(source, node))


# ----------------------------------------------------------------------
# Per-function product
# ----------------------------------------------------------------------


class FunctionFacts:
    """Everything the interpreter learned about one function."""

    __slots__ = (
        "info", "contract", "hot_path", "fact_by_node", "return_fact",
        "mask_sources",
    )

    def __init__(self, info: FunctionInfo, contract: Optional[StaticContract], hot_path: bool) -> None:
        self.info = info
        self.contract = contract
        self.hot_path = hot_path
        #: ``id(expr node)`` -> fact, for every expression with a known fact.
        self.fact_by_node: Dict[int, ArrayFact] = {}
        #: joined fact of all ``return`` expressions (None = unknown).
        self.return_fact: Optional[ArrayFact] = None
        #: local mask name -> parameter name it was compared from
        #: (``alive = positions >= 0``), for R16's parallel-array check.
        self.mask_sources: Dict[str, str] = {}

    def fact(self, node: ast.AST) -> Optional[ArrayFact]:
        return self.fact_by_node.get(id(node))


class _Evaluator:
    """One forward pass over one function body."""

    def __init__(
        self,
        facts: FunctionFacts,
        source: SourceFile,
        index: ProjectIndex,
        summaries: Dict[str, Optional[ArrayFact]],
    ) -> None:
        self.facts = facts
        self.info = facts.info
        self.source = source
        self.index = index
        self.summaries = summaries
        self.env: Dict[str, Optional[ArrayFact]] = {}
        self.return_fact: Optional[ArrayFact] = None
        self.saw_return = False
        self.np_aliases = set(source.aliases.module_alias_for("numpy"))
        if facts.contract is not None:
            for name, spec in facts.contract.params.items():
                self.env[name] = spec.fact()

    # -- statements ----------------------------------------------------

    def run(self) -> None:
        for stmt in self.info.node.body:
            self._exec(stmt)
        self.facts.return_fact = self.return_fact if self.saw_return else None

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            fact = self._eval(stmt.value)
            self._record_mask(stmt, fact)
            for target in stmt.targets:
                self._assign(target, fact)
        elif isinstance(stmt, ast.AnnAssign):
            fact = self._eval(stmt.value) if stmt.value is not None else None
            self._assign(stmt.target, fact)
        elif isinstance(stmt, ast.AugAssign):
            self._eval(stmt.value)
            self._assign(stmt.target, None)
        elif isinstance(stmt, ast.Return):
            fact = self._eval(stmt.value) if stmt.value is not None else None
            if self.saw_return:
                self.return_fact = _join(self.return_fact, fact)
            else:
                self.return_fact = fact
                self.saw_return = True
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._exec_branches([stmt.body, stmt.orelse])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._eval(stmt.iter)
            self._assign(stmt.target, None)
            self._exec_branches([stmt.body + stmt.orelse, []])
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            self._exec_branches([stmt.body + stmt.orelse, []])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, None)
            for child in stmt.body:
                self._exec(child)
        elif isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                for child in block:
                    self._exec(child)
            for handler in stmt.handlers:
                for child in handler.body:
                    self._exec(child)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested scopes are opaque — different namespace, no facts
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
                elif isinstance(child, ast.stmt):
                    self._exec(child)

    def _exec_branches(self, branches: Sequence[List[ast.stmt]]) -> None:
        """Execute alternative suites from one entry env and join results."""
        entry = dict(self.env)
        exits: List[Dict[str, Optional[ArrayFact]]] = []
        for body in branches:
            self.env = dict(entry)
            for child in body:
                self._exec(child)
            exits.append(self.env)
        merged: Dict[str, Optional[ArrayFact]] = {}
        for name in set().union(*exits):
            fact = exits[0].get(name)
            for other in exits[1:]:
                fact = _join(fact, other.get(name))
            merged[name] = fact
        self.env = merged

    def _assign(self, target: ast.expr, fact: Optional[ArrayFact]) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = fact
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign(elt, None)
        elif isinstance(target, ast.Subscript):
            self._eval(target.value)
            self._eval(target.slice)
        # attribute stores are out of the local domain

    def _record_mask(self, stmt: ast.Assign, fact: Optional[ArrayFact]) -> None:
        """``alive = positions >= 0`` — remember which param fed the mask."""
        del fact
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        value = stmt.value
        if not (isinstance(value, ast.Compare) and isinstance(value.left, ast.Name)):
            return
        contract = self.facts.contract
        if contract is not None and value.left.id in contract.params:
            self.facts.mask_sources[stmt.targets[0].id] = value.left.id

    # -- expressions ---------------------------------------------------

    def _eval(self, node: Optional[ast.expr]) -> Optional[ArrayFact]:
        if node is None:
            return None
        fact = self._eval_inner(node)
        if fact is not None and fact.known():
            self.facts.fact_by_node[id(node)] = fact
            return fact
        return None

    def _eval_children(self, node: ast.expr) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)

    def _eval_inner(self, node: ast.expr) -> Optional[ArrayFact]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.UnaryOp):
            inner = self._eval(node.operand)
            if inner is not None and isinstance(node.op, (ast.USub, ast.UAdd, ast.Invert)):
                return ArrayFact(inner.dtype, inner.shape)
            return None
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return _join(self._eval(node.body), self._eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._eval(value)
            return None
        self._eval_children(node)
        return None

    # -- call modelling ------------------------------------------------

    def _np_func(self, func: ast.expr) -> Optional[str]:
        """``np.<name>`` / bare imported numpy function name, or None."""
        chain = attribute_chain(func)
        if chain is not None and len(chain) == 2 and chain[0] in self.np_aliases:
            return chain[1]
        if isinstance(func, ast.Name):
            qualified = self.source.aliases.qualified(func.id)
            if qualified is not None and qualified.startswith("numpy."):
                return qualified.split(".", 1)[1]
        return None

    def _dtype_of_expr(self, node: ast.expr) -> Optional[str]:
        """Canonical dtype named by a dtype argument, if literal."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value if node.value in _KNOWN_DTYPES else None
        chain = attribute_chain(node)
        if chain is not None and chain[-1] in _KNOWN_DTYPES:
            return chain[-1]
        return None

    def _shape_of_arg(self, node: ast.expr) -> Optional[Shape]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return (node.value,)
        if isinstance(node, ast.Name) and node.id not in self.env:
            return (node.id,)
        if isinstance(node, ast.Tuple):
            dims: List[Dim] = []
            for elt in node.elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, int):
                    dims.append(elt.value)
                elif isinstance(elt, ast.Name) and elt.id not in self.env:
                    dims.append(elt.id)
                else:
                    self._eval(elt)
                    dims.append(None)
            return tuple(dims)
        self._eval(node)
        return None

    def _dtype_kw(self, node: ast.Call) -> Tuple[Optional[str], bool]:
        """(dtype name, dtype keyword present) of a constructor call."""
        for kw in node.keywords:
            if kw.arg == "dtype":
                return self._dtype_of_expr(kw.value), True
        return None, False

    def _eval_call(self, node: ast.Call) -> Optional[ArrayFact]:
        for arg in node.args:
            self._eval(arg)
        for kw in node.keywords:
            self._eval(kw.value)
        func = node.func
        name = self._np_func(func)
        if name is not None:
            return self._eval_np_call(node, name)
        if isinstance(func, ast.Attribute):
            result = self._eval_method(node, func)
            if result is not None:
                return result
        callee = self.index.resolve_call(node, self.info)
        if callee is not None:
            return self.summaries.get(callee)
        return None

    def _eval_np_call(self, node: ast.Call, name: str) -> Optional[ArrayFact]:
        dtype, has_dtype = self._dtype_kw(node)
        first = node.args[0] if node.args else None
        if name in _ALLOC_CTORS:
            shape = self._shape_of_arg(first) if first is not None else None
            if not has_dtype:
                return ArrayFact("float64", shape, origin="alloc-default")
            return ArrayFact(dtype, shape)
        if name == "full":
            shape = self._shape_of_arg(first) if first is not None else None
            return ArrayFact(dtype, shape)
        if name == "arange":
            shape = None
            if len(node.args) == 1 and first is not None:
                if isinstance(first, ast.Constant) and isinstance(first.value, int):
                    shape = (first.value,)
                elif isinstance(first, ast.Name) and first.id not in self.env:
                    shape = (first.id,)
                else:
                    shape = (None,)
            elif node.args:
                shape = (None,)
            if not has_dtype:
                return ArrayFact(None, shape, origin="arange-default")
            return ArrayFact(dtype, shape)
        if name in ("asarray", "array", "ascontiguousarray"):
            inner = self.facts.fact(first) if first is not None else None
            if has_dtype:
                shape = inner.shape if inner is not None else None
                return ArrayFact(dtype, shape)
            return inner
        if name in _PRESERVING:
            inner = self.facts.fact(first) if first is not None else None
            if inner is not None:
                return ArrayFact(inner.dtype, inner.shape)
            return None
        if name in _RANK1:
            inner = self.facts.fact(first) if first is not None else None
            dtype_out = None
            if name in ("diff", "unique", "ravel") and inner is not None:
                dtype_out = inner.dtype
            return ArrayFact(dtype_out, (None,))
        if name == "repeat":
            inner = self.facts.fact(first) if first is not None else None
            if any(kw.arg == "axis" for kw in node.keywords):
                return None
            return ArrayFact(inner.dtype if inner else None, (None,))
        if name == "concatenate" and first is not None:
            return self._eval_concatenate(first)
        if name in ("minimum", "maximum") and len(node.args) >= 2:
            return self._broadcast_facts(
                self.facts.fact(node.args[0]), self.facts.fact(node.args[1])
            )
        if name == "searchsorted":
            return ArrayFact(None, (None,))
        if name == "where":
            return None
        return None

    def _eval_concatenate(self, seq: ast.expr) -> Optional[ArrayFact]:
        if not isinstance(seq, (ast.List, ast.Tuple)):
            return ArrayFact(None, None)
        facts = [self.facts.fact(elt) for elt in seq.elts]
        if not facts or any(f is None or f.shape is None for f in facts):
            return None
        ranks = {len(f.shape) for f in facts}  # type: ignore[arg-type]
        if len(ranks) != 1:
            return None
        rank = ranks.pop()
        dtypes = {f.dtype for f in facts}  # type: ignore[union-attr]
        dtype = dtypes.pop() if len(dtypes) == 1 else None
        trailing: List[Dim] = []
        for axis in range(1, rank):
            dims = {f.shape[axis] for f in facts}  # type: ignore[index]
            trailing.append(dims.pop() if len(dims) == 1 else None)
        return ArrayFact(dtype, (None, *trailing))

    def _eval_method(self, node: ast.Call, func: ast.Attribute) -> Optional[ArrayFact]:
        receiver = self._eval(func.value)
        method = func.attr
        if method == "astype":
            target = None
            if node.args:
                target = self._dtype_of_expr(node.args[0])
            else:
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        target = self._dtype_of_expr(kw.value)
            shape = receiver.shape if receiver is not None else None
            if target is not None:
                return ArrayFact(target, shape)
            return None
        if method == "copy" and receiver is not None:
            return ArrayFact(receiver.dtype, receiver.shape)
        if method == "reshape":
            args = node.args
            if len(args) == 1 and isinstance(args[0], ast.Tuple):
                args = args[0].elts
            dims: List[Dim] = []
            for arg in args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                    dims.append(arg.value if arg.value >= 0 else None)
                elif isinstance(arg, ast.Name) and arg.id not in self.env:
                    dims.append(arg.id)
                else:
                    dims.append(None)
            dtype = receiver.dtype if receiver is not None else None
            return ArrayFact(dtype, tuple(dims) if dims else None)
        if method in _RNG_METHODS:
            shape = (
                self._shape_of_arg(node.args[0]) if node.args else None
            )
            return ArrayFact("float64", shape)
        return None

    # -- operators -----------------------------------------------------

    def _broadcast_facts(
        self, a: Optional[ArrayFact], b: Optional[ArrayFact]
    ) -> Optional[ArrayFact]:
        if a is None and b is None:
            return None
        if a is None or b is None:
            known = a or b
            assert known is not None
            return ArrayFact(None, known.shape)
        dtype: Optional[str] = None
        if a.dtype == b.dtype:
            dtype = a.dtype
        elif "float64" in (a.dtype, b.dtype):
            dtype = "float64"
        elif a.dtype == "bool":
            dtype = b.dtype
        elif b.dtype == "bool":
            dtype = a.dtype
        shape: Optional[Shape] = None
        if a.shape is not None and b.shape is not None:
            rank = max(len(a.shape), len(b.shape))
            left = (None,) * (rank - len(a.shape)) + a.shape
            right = (None,) * (rank - len(b.shape)) + b.shape
            dims: List[Dim] = []
            for da, db in zip(left, right):
                if da == db:
                    dims.append(da)
                elif da == 1:
                    dims.append(db)
                elif db == 1:
                    dims.append(da)
                else:
                    dims.append(None)
            shape = tuple(dims)
        elif a.shape is not None or b.shape is not None:
            shape = None
        return ArrayFact(dtype, shape)

    def _eval_binop(self, node: ast.BinOp) -> Optional[ArrayFact]:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if left is None and right is None:
            return None
        if left is not None and right is not None:
            fact = self._broadcast_facts(left, right)
        else:
            known = left or right
            assert known is not None
            fact = ArrayFact(known.dtype, known.shape)
        if fact is not None and isinstance(node.op, ast.Div):
            fact = ArrayFact("float64", fact.shape)
        return fact

    def _eval_compare(self, node: ast.Compare) -> Optional[ArrayFact]:
        left = self._eval(node.left)
        rights = [self._eval(c) for c in node.comparators]
        right = rights[0] if rights else None
        if left is None and right is None:
            return None
        merged = self._broadcast_facts(left, right) if left and right else (left or right)
        shape = merged.shape if merged is not None else None
        return ArrayFact("bool", shape)

    def _eval_subscript(self, node: ast.Subscript) -> Optional[ArrayFact]:
        value = self._eval(node.value)
        index = self._eval(node.slice)
        if value is None:
            return None
        if isinstance(node.slice, ast.Slice):
            self._eval(node.slice.lower)
            self._eval(node.slice.upper)
            self._eval(node.slice.step)
            if value.shape is not None:
                return ArrayFact(value.dtype, (None, *value.shape[1:]))
            return ArrayFact(value.dtype, None)
        if index is not None and index.shape is not None:
            # Advanced indexing with one array index: boolean masks
            # compact to rank 1; integer indices graft their shape in
            # place of the first axis.
            if index.dtype == "bool":
                return ArrayFact(value.dtype, (None,))
            if value.shape is not None and len(index.shape) == 1:
                return ArrayFact(value.dtype, (index.shape[0], *value.shape[1:]))
            return ArrayFact(value.dtype, None)
        if isinstance(node.slice, ast.Tuple):
            return ArrayFact(value.dtype, None)
        # Scalar index: drops the leading axis.
        if index is None and value.shape is not None and len(value.shape) >= 1:
            if not isinstance(node.slice, (ast.Slice, ast.Tuple)):
                rest = value.shape[1:]
                if rest:
                    return ArrayFact(value.dtype, rest)
                return None  # 0-d result — scalar, not an array fact
        return ArrayFact(value.dtype, None) if value.dtype else None


# ----------------------------------------------------------------------
# Whole-program driver
# ----------------------------------------------------------------------

_MAX_PASSES = 5


class ArrayFlowIndex:
    """Array facts for every function of one lint invocation."""

    def __init__(self, project: "Project") -> None:
        self.index: ProjectIndex = flow_index(project)
        self.functions: Dict[str, FunctionFacts] = {}
        self._summaries: Dict[str, Optional[ArrayFact]] = {}
        self._build()

    def _build(self) -> None:
        shells: Dict[str, FunctionFacts] = {}
        for info in self.index.iter_functions():
            source = self.index.source_by_rel.get(info.rel)
            if source is None:
                continue
            contract = parse_contract_decorator(info.node)
            hot = marked_hot_path(source, info.node)
            shells[info.qual] = FunctionFacts(info, contract, hot)
            # Seed summaries with declared returns: the runtime enforces
            # them, so they are facts at call sites from pass one.
            if contract is not None and contract.returns is not None:
                self._summaries[info.qual] = contract.returns.fact()
            else:
                self._summaries[info.qual] = None

        for _ in range(_MAX_PASSES):
            changed = False
            for qual, shell in shells.items():
                source = self.index.source_by_rel[shell.info.rel]
                facts = FunctionFacts(shell.info, shell.contract, shell.hot_path)
                evaluator = _Evaluator(facts, source, self.index, self._summaries)
                evaluator.run()
                self.functions[qual] = facts
                if shell.contract is None or shell.contract.returns is None:
                    if self._summaries.get(qual) != facts.return_fact:
                        self._summaries[qual] = facts.return_fact
                        changed = True
            if not changed:
                break

    def facts_for(self, qual: str) -> Optional[FunctionFacts]:
        return self.functions.get(qual)

    def in_file(self, rel: str) -> Iterable[FunctionFacts]:
        for facts in self.functions.values():
            if facts.info.rel == rel:
                yield facts


def arrayflow_index(project: "Project") -> ArrayFlowIndex:
    """The (memoised) :class:`ArrayFlowIndex` of ``project``."""
    cached = getattr(project, "_arrayflow_index", None)
    if cached is None:
        cached = ArrayFlowIndex(project)
        project._arrayflow_index = cached  # type: ignore[attr-defined]
    return cached
