"""R12 — metrics-catalog conformance (no metric outside the catalogue).

:mod:`repro.obs.catalog` is the single source of truth for every metric
the pipeline emits: docs tables, exporters, and the runtime catalog
meta-test all read it.  The meta-test, however, only covers metrics a
test *happens to record*; this rule makes the contract statically
complete in both directions:

- **Every reference resolves.**  ``catalog.X`` attribute references
  must name a defined constant; ``registry.counter("sub", "name")``
  style literal pairs must be registered in ``CATALOG``; dotted
  ``"subsystem.name"`` strings (the snapshot-key form consumed by
  :class:`~repro.obs.window.MetricsWindow` and the exporters) whose
  first segment is a known subsystem must name a registered metric.
- **Every registration is used.**  A ``CATALOG`` entry nobody
  references — by constant (outside the ``CATALOG`` literal itself),
  by literal pair, or by dotted string — is dead weight that silently
  rots the docs table.  References from other catalog-module tables
  (``CONTROL_KNOB_GAUGES``) count: registration is the ``CATALOG``
  entry, everything else is use.
- **Every constant is registered.**  A ``NAME = ("sub", "name")``
  tuple missing from ``CATALOG`` exports without kind/description.

Precision guards: dotted-string matching requires exactly two
``[a-z_]+`` segments, a first segment that is a registered subsystem,
and a second segment that is not a file extension (``"index.npz"`` is
an artefact path, not a metric); docstrings are skipped; literal-pair
checking only fires on accessor methods (``counter``/``gauge``/
``histogram``/``get``/``counter_value``) whose receiver chain mentions
a registry.
"""

from __future__ import annotations

import ast
import re
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["MetricsCatalogRule"]

_CATALOG_MODULE = "repro.obs.catalog"

#: registry accessor methods that take ``(subsystem, name)`` heads.
_ACCESSORS = frozenset(
    {"counter", "gauge", "histogram", "get", "counter_value", "gauge_value",
     "histogram_value"}
)

#: non-constant public names the catalog module legitimately exposes.
_CATALOG_EXPORTS = frozenset({"CATALOG", "CONTROL_KNOB_GAUGES", "flat_name"})

_DOTTED_RE = re.compile(r"([a-z_]+)\.([a-z_]+)")

#: second segments that mean "file path", not "metric name".
_EXTENSIONS = frozenset(
    {"py", "pyc", "npz", "npy", "json", "jsonl", "md", "txt", "csv", "bin",
     "gz", "log", "tmp", "yaml", "yml", "toml", "lock", "prom", "sarif"}
)


class MetricsCatalogRule(Rule):
    id = "R12"
    name = "metrics-catalog"
    summary = (
        "every metric reference must resolve to a repro.obs.catalog "
        "registration, and every registration must have a referent"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        catalog = self._find_catalog(project)
        if catalog is None:
            return
        constants, const_lines, registered = self._parse_catalog(catalog)
        if not registered:
            return
        subsystems = {key[0] for key in registered}
        dotted_names = {f"{sub}.{name}" for sub, name in registered}
        used: Set[Tuple[str, str]] = set()

        # Constant defined but never registered in CATALOG.
        for name, key in constants.items():
            if key not in registered:
                self._emit(
                    catalog.rel, const_lines[name], 0,
                    f"catalog constant `{name}` = {key!r} is not registered "
                    "in CATALOG — it exports without a kind or description",
                )

        for source in project.sources:
            if source.syntax_error is not None:
                continue
            self._scan_source(
                source, catalog, constants, registered, subsystems,
                dotted_names, used,
            )

        for key in sorted(registered - used):
            name = next((n for n, k in constants.items() if k == key), None)
            line = const_lines.get(name or "", 0)
            self._emit(
                catalog.rel, line, 0,
                f"catalog entry {key!r} is never referenced by any "
                "instrument call, accessor, or exporter — remove it or wire "
                "up the missing instrumentation",
            )

    # -- catalog parsing ----------------------------------------------

    @staticmethod
    def _find_catalog(project: "Project") -> Optional[SourceFile]:
        for source in project.sources:
            rel = source.rel.replace("\\", "/")
            if rel.endswith("obs/catalog.py") and source.syntax_error is None:
                return source
        return None

    @staticmethod
    def _parse_catalog(
        catalog: SourceFile,
    ) -> Tuple[Dict[str, Tuple[str, str]], Dict[str, int], Set[Tuple[str, str]]]:
        constants: Dict[str, Tuple[str, str]] = {}
        const_lines: Dict[str, int] = {}
        registered: Set[Tuple[str, str]] = set()
        catalog_dict: Optional[ast.Dict] = None
        for stmt in catalog.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if (
                isinstance(value, ast.Tuple)
                and len(value.elts) == 2
                and all(
                    isinstance(e, ast.Constant) and isinstance(e.value, str)
                    for e in value.elts
                )
            ):
                key = (value.elts[0].value, value.elts[1].value)  # type: ignore[union-attr]
                constants[target.id] = key
                const_lines[target.id] = stmt.lineno
            elif target.id == "CATALOG" and isinstance(value, ast.Dict):
                catalog_dict = value
        # AnnAssign form: ``CATALOG: Dict[...] = {...}``.
        if catalog_dict is None:
            for stmt in catalog.tree.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "CATALOG"
                    and isinstance(stmt.value, ast.Dict)
                ):
                    catalog_dict = stmt.value
        if catalog_dict is not None:
            for key_node in catalog_dict.keys:
                if isinstance(key_node, ast.Name) and key_node.id in constants:
                    registered.add(constants[key_node.id])
        return constants, const_lines, registered

    # -- per-file scanning --------------------------------------------

    def _scan_source(
        self,
        source: SourceFile,
        catalog: SourceFile,
        constants: Dict[str, Tuple[str, str]],
        registered: Set[Tuple[str, str]],
        subsystems: Set[str],
        dotted_names: Set[str],
        used: Set[Tuple[str, str]],
    ) -> None:
        is_catalog = source is catalog
        catalog_aliases = {
            alias
            for alias, target in source.aliases.modules.items()
            if target == _CATALOG_MODULE
        }
        #: node ids of the CATALOG literal (registration, not use) and of
        #: docstring constants.
        skip_ids: Set[int] = set()
        if is_catalog:
            for stmt in catalog.tree.body:
                target = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                elif isinstance(stmt, ast.AnnAssign):
                    target = stmt.target
                if isinstance(target, ast.Name) and target.id == "CATALOG":
                    for node in ast.walk(stmt):
                        skip_ids.add(id(node))
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Constant):
                skip_ids.add(id(node.value))  # docstrings / bare literals
            elif isinstance(node, ast.Call) and node.args:
                # Tracer span names (``obs.trace("query.topk")``) share
                # the dotted shape but are a separate namespace.
                func = node.func
                attr = (
                    func.attr if isinstance(func, ast.Attribute)
                    else func.id if isinstance(func, ast.Name) else None
                )
                if attr == "trace":
                    skip_ids.add(id(node.args[0]))

        for node in ast.walk(source.tree):
            if id(node) in skip_ids:
                continue
            if isinstance(node, ast.Attribute) and catalog_aliases:
                self._check_attr_ref(source, node, catalog_aliases, constants, used)
            elif is_catalog and isinstance(node, ast.Name):
                # Uses inside the catalog module itself (e.g. the
                # CONTROL_KNOB_GAUGES table) — registration was excluded
                # via skip_ids above.
                if (
                    node.id in constants
                    and isinstance(node.ctx, ast.Load)
                    and id(node) not in skip_ids
                ):
                    used.add(constants[node.id])
            elif isinstance(node, ast.Call):
                self._check_pair_call(source, node, registered, used)
            elif isinstance(node, ast.Constant) and isinstance(node.value, str):
                self._check_dotted(
                    source, node, subsystems, dotted_names, registered, used
                )

    def _check_attr_ref(
        self,
        source: SourceFile,
        node: ast.Attribute,
        catalog_aliases: Set[str],
        constants: Dict[str, Tuple[str, str]],
        used: Set[Tuple[str, str]],
    ) -> None:
        chain = attribute_chain(node)
        if chain is None or len(chain) != 2 or chain[0] not in catalog_aliases:
            return
        name = chain[1]
        if name in constants:
            used.add(constants[name])
        elif name not in _CATALOG_EXPORTS and not name.startswith("__"):
            self._emit(
                source.rel, node.lineno, node.col_offset,
                f"`{chain[0]}.{name}` does not name a catalog constant — "
                "register the metric in repro.obs.catalog first",
            )

    def _check_pair_call(
        self,
        source: SourceFile,
        node: ast.Call,
        registered: Set[Tuple[str, str]],
        used: Set[Tuple[str, str]],
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _ACCESSORS:
            return
        chain = attribute_chain(func)
        if chain is None:
            return
        receiver = chain[:-1]
        if not any("registry" in part.lower() for part in receiver):
            return
        if len(node.args) < 2:
            return
        first, second = node.args[0], node.args[1]
        if not (
            isinstance(first, ast.Constant) and isinstance(first.value, str)
            and isinstance(second, ast.Constant) and isinstance(second.value, str)
        ):
            return
        key = (first.value, second.value)
        if key in registered:
            used.add(key)
        else:
            self._emit(
                source.rel, node.lineno, node.col_offset,
                f"metric {key!r} passed to `.{func.attr}()` is not registered "
                "in repro.obs.catalog — exporters and the docs table will "
                "never know it exists",
            )

    def _check_dotted(
        self,
        source: SourceFile,
        node: ast.Constant,
        subsystems: Set[str],
        dotted_names: Set[str],
        registered: Set[Tuple[str, str]],
        used: Set[Tuple[str, str]],
    ) -> None:
        match = _DOTTED_RE.fullmatch(node.value)
        if match is None:
            return
        sub, name = match.group(1), match.group(2)
        if sub not in subsystems or name in _EXTENSIONS:
            return
        if node.value in dotted_names:
            used.add((sub, name))
        else:
            self._emit(
                source.rel, node.lineno, node.col_offset,
                f"dotted metric key '{node.value}' does not match any "
                "repro.obs.catalog registration — windows and exporters "
                "will silently read zeros",
            )

    # -- plumbing ------------------------------------------------------

    def _emit(self, rel: str, line: int, col: int, message: str) -> None:
        self._findings.setdefault(rel, []).append(
            Finding(rule=self.id, path=rel, line=line, col=col, message=message)
        )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
