"""Per-function taint propagation shared by R7 and R8.

Both flow rules reduce to the same local question — *which names in
this function can hold a value of interest* — differing only in what
creates such a value (a ``default_rng``/``ensure_rng`` call vs a
``handle.current()`` read), what launders it (``derive_seed``/``int``
vs ``.clone()``), and what consumes it (a dispatch boundary vs a
mutating call).  :class:`TaintDomain` carries those three deltas;
:class:`LocalTaint` is the fixpoint engine.

Propagation is syntactic and deliberately shallow: names, attribute
projections (``snap.engine.index`` is tainted when ``snap`` is),
subscripts, tuple packing/unpacking, conditional expressions, loop
targets, walrus bindings.  Calls do not propagate taint through their
return value unless the domain says the call *is* a source — the same
precision-over-recall bargain the resolution layer makes.
"""

from __future__ import annotations

import ast
from typing import Optional, Set, Union

from repro.analysis.flow.graph import FunctionInfo

__all__ = ["TaintDomain", "LocalTaint", "call_name"]


def call_name(call: ast.Call) -> Optional[str]:
    """The bare name a call is made through (``f`` or ``obj.f`` -> ``f``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class TaintDomain:
    """What creates, launders, and never carries taint for one rule."""

    #: call names whose result is tainted.
    source_calls: frozenset = frozenset()
    #: call names whose result is clean even with tainted arguments.
    sanitizer_calls: frozenset = frozenset()

    def is_source_call(self, call: ast.Call) -> bool:
        return call_name(call) in self.source_calls

    def is_source_expr(self, expr: ast.expr) -> bool:
        """Non-call source expressions (e.g. a ``._snapshot`` read)."""
        del expr
        return False

    def owned_names(self, info: FunctionInfo) -> Set[str]:
        """Names exempt from taint (blessed locals); default none."""
        del info
        return set()


class LocalTaint:
    """Tainted-name fixpoint over one function body."""

    def __init__(
        self,
        info: FunctionInfo,
        domain: TaintDomain,
        seeds: Set[str],
        use_sources: bool = True,
    ) -> None:
        self.info = info
        self.domain = domain
        #: when False, domain sources do not seed taint — used for the
        #: param-summary passes, where exactly one param is the source.
        self.use_sources = use_sources
        self._owned = domain.owned_names(info)
        self.tainted: Set[str] = set(seeds) - self._owned
        self._fixpoint()

    # ------------------------------------------------------------------

    def _fixpoint(self) -> None:
        bindings = self._collect_bindings()
        changed = True
        while changed:
            changed = False
            for targets, value in bindings:
                if not self.expr_tainted(value):
                    continue
                for name in targets:
                    if name not in self._owned and name not in self.tainted:
                        self.tainted.add(name)
                        changed = True

    def _collect_bindings(self) -> "list[tuple[list, ast.expr]]":
        bindings = []
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Assign):
                names = []
                for target in node.targets:
                    names.extend(_target_names(target))
                bindings.append((names, node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                bindings.append((_target_names(node.target), node.value))
            elif isinstance(node, ast.NamedExpr):
                bindings.append((_target_names(node.target), node.value))
            elif isinstance(node, ast.For):
                bindings.append((_target_names(node.target), node.iter))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        bindings.append(
                            (_target_names(item.optional_vars), item.context_expr)
                        )
        return bindings

    # ------------------------------------------------------------------

    def expr_tainted(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in self.tainted
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in self.domain.sanitizer_calls:
                return False
            return self.use_sources and self.domain.is_source_call(expr)
        if isinstance(expr, ast.Attribute):
            if self.use_sources and self.domain.is_source_expr(expr):
                return True
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.Subscript):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.Starred):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.Await):
            return self.expr_tainted(expr.value)
        if isinstance(expr, ast.IfExp):
            return self.expr_tainted(expr.body) or self.expr_tainted(expr.orelse)
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(self.expr_tainted(elt) for elt in expr.elts)
        if isinstance(expr, ast.BoolOp):
            return any(self.expr_tainted(value) for value in expr.values)
        return False


def _target_names(target: ast.expr) -> "list[str]":
    """Name targets of an assignment (tuple unpacking is coarse: all)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []
