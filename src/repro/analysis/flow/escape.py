"""R8 — escape analysis for published snapshots.

R2 flags direct mutation of index payload, but only where it can *see*
the receiver's type (annotations, owner classes).  The gap it leaves:
a value captured from ``handle.current()`` flows through a few local
names and into a helper that mutates its parameter — every step looks
innocent locally, and the sum corrupts a published snapshot that
concurrent readers are scoring against.

R8 closes the gap with whole-program taint:

- **sources** — results of ``.current()`` and shared-memory
  ``.attach()`` calls, reads of a ``._snapshot`` attribute, and
  parameters annotated with a snapshot type (``EngineSnapshot``,
  ``CandidateIndex``, ``BufferBackedCandidateIndex``, ``FlatSketch``,
  ``GammaTable``, ``SharedArrayBundle``); attribute projections
  propagate (``snap.engine``, ``snap.index.signatures`` are as
  published as ``snap``, and ``bundle.arrays`` is as shared as the
  segment it maps);
- **blessed copies** — ``.clone()`` results and snapshot-class
  constructor calls are clean (they are the sanctioned write path);
- **sinks** — passing a tainted value to a project function whose
  parameter is *mutated* (directly or transitively — summaries to
  fixpoint over the call graph), calling a resolved method that
  mutates ``self`` on a tainted receiver, and storing a tainted value
  into a ``global``-declared name.

Findings fire at the escaping call/store site.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.flow.graph import FunctionInfo, ProjectIndex, flow_index
from repro.analysis.flow.taint import LocalTaint, TaintDomain
from repro.analysis.rules import Rule
from repro.analysis.rules.snapshots import (
    CONTAINER_MUTATORS,
    INDEX_MUTATORS,
    _payload_target,
)
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["SnapshotEscapeRule", "SNAPSHOT_CLASSES"]

#: types whose instances are published, immutable serving state.  The
#: shard additions extend the rule across process boundaries: a
#: ``SharedArrayBundle`` (and the buffer-backed index built over one)
#: maps memory owned by another process's epoch, so mutating it — or
#: letting it outlive its epoch — has the same blast radius as writing
#: into a published snapshot.
SNAPSHOT_CLASSES = (
    "EngineSnapshot",
    "CandidateIndex",
    "BufferBackedCandidateIndex",
    "FlatSketch",
    "GammaTable",
    "SharedArrayBundle",
)


class _SnapshotDomain(TaintDomain):
    source_calls = frozenset({"current", "attach"})
    sanitizer_calls = frozenset({"clone", "cls", *SNAPSHOT_CLASSES})

    def is_source_expr(self, expr: ast.expr) -> bool:
        return isinstance(expr, ast.Attribute) and expr.attr == "_snapshot"

    def owned_names(self, info: FunctionInfo) -> Set[str]:
        """Locals bound from ``.clone()`` or a snapshot constructor."""
        owned: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                from repro.analysis.flow.taint import call_name

                if call_name(node.value) in self.sanitizer_calls:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            owned.add(target.id)
        return owned


def _snapshot_params(info: FunctionInfo) -> Set[str]:
    return {
        param
        for param, classes in info.param_classes.items()
        if classes.intersection(SNAPSHOT_CLASSES)
    }


def _chain_root(expr: ast.expr) -> Optional[str]:
    chain = attribute_chain(expr)
    return chain[0] if chain else None


def _direct_mutations(info: FunctionInfo) -> Set[str]:
    """Parameters (incl. ``self``) this function mutates in place."""
    params = set(info.params)
    mutated: Set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                payload = _payload_target(target)
                if payload is not None:
                    root = payload[0][0]
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    stripped = target
                    while isinstance(stripped, ast.Subscript):
                        stripped = stripped.value
                    root = _chain_root(stripped)
                else:
                    continue
                if root in params:
                    mutated.add(root)
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in INDEX_MUTATORS or method in CONTAINER_MUTATORS:
                root = _chain_root(node.func.value)
                if root in params:
                    mutated.add(root)
    return mutated


def _mutation_summaries(index: ProjectIndex) -> Dict[str, Set[str]]:
    """param name -> mutated, per function, closed over the call graph."""
    summaries = {
        info.qual: _direct_mutations(info) for info in index.iter_functions()
    }
    changed = True
    while changed:
        changed = False
        for info in index.iter_functions():
            own = summaries[info.qual]
            params = set(info.params)
            for site in index.calls.get(info.qual, ()):
                if site.callee is None:
                    continue
                callee = index.functions.get(site.callee)
                if callee is None:
                    continue
                callee_mutates = summaries.get(site.callee, set())
                # A parameter forwarded into a mutated parameter.
                for param, arg in _map_params(site.node, callee):
                    root = (
                        arg.id if isinstance(arg, ast.Name) else _chain_root(arg)
                    )
                    if (
                        param in callee_mutates
                        and root in params
                        and root not in own
                    ):
                        own.add(root)
                        changed = True
                # A method mutating ``self``, called on a parameter.
                if "self" in callee_mutates and isinstance(
                    site.node.func, ast.Attribute
                ):
                    root = _chain_root(site.node.func.value)
                    if root in params and root not in own:
                        own.add(root)
                        changed = True
    return summaries


def _map_params(call: ast.Call, callee: FunctionInfo):
    from repro.analysis.flow.rngflow import _map_call_args

    return _map_call_args(call, callee)


class SnapshotEscapeRule(Rule):
    id = "R8"
    name = "snapshot-escape"
    summary = (
        "a published snapshot (EngineSnapshot/CandidateIndex/FlatSketch/"
        "GammaTable) or shared-memory attachment (SharedArrayBundle) must "
        "not escape into a call that mutates it — patch a `.clone()` and "
        "publish a new snapshot instead"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        index = flow_index(project)
        domain = _SnapshotDomain()
        summaries = _mutation_summaries(index)

        for info in index.iter_functions():
            taint = LocalTaint(info, domain, _snapshot_params(info))
            if not taint.tainted and not self._any_source(info, domain):
                continue
            for finding in self._escapes(index, info, taint, summaries):
                self._findings.setdefault(info.rel, []).append(finding)

    @staticmethod
    def _any_source(info: FunctionInfo, domain: _SnapshotDomain) -> bool:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call) and domain.is_source_call(node):
                return True
            if isinstance(node, ast.Attribute) and domain.is_source_expr(node):
                return True
        return False

    def _escapes(
        self,
        index: ProjectIndex,
        info: FunctionInfo,
        taint: LocalTaint,
        summaries: Dict[str, Set[str]],
    ) -> Iterator[Finding]:
        short = info.qual.split("::", 1)[1]
        for site in index.calls.get(info.qual, ()):
            if site.callee is None:
                continue
            callee = index.functions.get(site.callee)
            if callee is None:
                continue
            callee_mutates = summaries.get(site.callee, set())
            callee_short = site.callee.split("::", 1)[1]
            if "self" in callee_mutates and isinstance(site.node.func, ast.Attribute):
                if taint.expr_tainted(site.node.func.value):
                    yield Finding(
                        rule=self.id,
                        path=info.rel,
                        line=site.node.lineno,
                        col=site.node.col_offset,
                        message=(
                            f"published snapshot escapes in `{short}`: "
                            f"`{callee_short}()` mutates its receiver, but the "
                            "receiver derives from a live snapshot — patch a "
                            "`.clone()` and publish a new snapshot (escape "
                            "analysis)"
                        ),
                    )
                    continue
            for param, arg in _map_params(site.node, callee):
                if param in callee_mutates and taint.expr_tainted(arg):
                    yield Finding(
                        rule=self.id,
                        path=info.rel,
                        line=site.node.lineno,
                        col=site.node.col_offset,
                        message=(
                            f"published snapshot escapes in `{short}`: argument "
                            f"`{param}` of `{callee_short}()` is mutated by the "
                            "callee, but the value derives from a live snapshot "
                            "— pass a `.clone()` instead (escape analysis)"
                        ),
                    )
        # Stores into explicitly-global names pin a snapshot beyond its
        # request/batch scope.
        global_names: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)
        if global_names:
            for node in ast.walk(info.node):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in global_names
                            and taint.expr_tainted(node.value)
                        ):
                            yield Finding(
                                rule=self.id,
                                path=info.rel,
                                line=node.lineno,
                                col=node.col_offset,
                                message=(
                                    f"published snapshot stored into global "
                                    f"`{target.id}` in `{short}` — snapshots are "
                                    "per-request/batch; re-read the handle "
                                    "instead of pinning one globally"
                                ),
                            )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
