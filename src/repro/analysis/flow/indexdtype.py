"""R14 — index-dtype discipline on the CSR/walk hot paths.

The repository's storage invariant (``docs/dynamic.md``): CSR
``indptr``/``indices`` arrays and walk position arrays are **int64,
always** — :class:`repro.graph.csr.CSRGraph` coerces on construction,
the delta/COW splice path preserves it, and the shard codec round-trips
it.  The ways that invariant silently breaks are all *defaults*:

- ``np.arange(n)`` with no dtype is ``np.int_`` — 32-bit on Windows —
  so an index built from it truncates above 2³¹ edges on exactly the
  graphs the paper targets;
- ``np.zeros(n)``/``ones``/``empty`` with no dtype are float64, poison
  as an index (every fancy-indexing use pays a cast-copy, or raises);
- ``.astype(np.int32)`` on an int64 array narrows wherever the author
  assumed "small graph";
- ``dtype=np.int_``/``np.intc``/``dtype=int`` bake the platform's C
  ``long`` into an array that crosses process and mmap boundaries.

This rule flags narrowing casts and platform-dependent dtype spellings
syntactically, and — using the abstract interpreter's *origin* facts —
untyped ``arange``/``zeros`` values that actually flow into an index
sink: a subscript index position, or an argument to a parameter whose
``@contract`` demands int64.  Scoped to ``core/``, ``graph/`` and the
shard codec (the serialization boundary); ``baselines/`` deliberately
compresses fingerprints to int32 and stays out of scope.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.flow.arrayflow import (
    PLATFORM_INT_NAMES,
    ArrayFlowIndex,
    FunctionFacts,
    arrayflow_index,
)
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["IndexDtypeRule"]

#: dtypes an int64 index array must never be narrowed to.
_NARROW_INTS = frozenset({"int8", "int16", "int32", "uint8", "uint16", "uint32"})

#: constructors whose dtype= keyword is checked for platform spellings.
_CTORS = frozenset(
    {"zeros", "ones", "empty", "full", "arange", "array", "asarray",
     "ascontiguousarray", "full_like", "zeros_like", "empty_like"}
)

_ORIGIN_MESSAGES = {
    "arange-default": (
        "np.arange without an explicit dtype is platform-dependent "
        "(np.int_ is 32-bit on Windows) — index arrays must be built "
        "with dtype=np.int64"
    ),
    "alloc-default": (
        "array allocated without a dtype defaults to float64 — as an "
        "index it pays a cast-copy per use or raises; allocate with "
        "dtype=np.int64"
    ),
}


def _platform_dtype_name(node: ast.expr) -> Optional[str]:
    """The platform-dependent dtype spelling of a dtype expr, if any."""
    chain = attribute_chain(node)
    if chain is not None and chain[-1] in PLATFORM_INT_NAMES:
        return ".".join(chain)
    if isinstance(node, ast.Name) and node.id == "int":
        return "int"
    return None


class IndexDtypeRule(Rule):
    id = "R14"
    name = "index-dtype"
    summary = (
        "CSR indptr/indices and walk position arrays are int64-only: no "
        "narrowing casts, no platform np.int_, no untyped allocations "
        "flowing into index sinks"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        flow = arrayflow_index(project)
        for facts in flow.functions.values():
            source = flow.index.source_by_rel.get(facts.info.rel)
            if source is None:
                continue
            self._scan_function(flow, facts, source)

    def _scan_function(
        self, flow: ArrayFlowIndex, facts: FunctionFacts, source: SourceFile
    ) -> None:
        for node in ast.walk(facts.info.node):
            if isinstance(node, ast.Call):
                self._check_astype(facts, source, node)
                self._check_ctor_dtype(source, node)
                self._check_contract_args(flow, facts, source, node)
            elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
                self._check_index_use(facts, source, node)

    # -- casts and spellings ------------------------------------------

    def _check_astype(
        self, facts: FunctionFacts, source: SourceFile, node: ast.Call
    ) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "astype"):
            return
        target = node.args[0] if node.args else None
        if target is None:
            for kw in node.keywords:
                if kw.arg == "dtype":
                    target = kw.value
        if target is None:
            return
        platform = _platform_dtype_name(target)
        if platform is not None:
            self._emit(
                source, node,
                f".astype({platform}) casts to the platform's C long — "
                "use np.int64 so the result is identical on every platform",
            )
            return
        chain = attribute_chain(target)
        name = (
            target.value if isinstance(target, ast.Constant)
            and isinstance(target.value, str)
            else chain[-1] if chain else None
        )
        if name not in _NARROW_INTS:
            return
        receiver = facts.fact(func.value)
        if receiver is not None and receiver.dtype == "int64":
            self._emit(
                source, node,
                f".astype({name}) narrows a proven int64 array — index and "
                "position arrays must stay int64 end to end (truncates "
                "silently past the dtype's range)",
            )

    def _check_ctor_dtype(self, source: SourceFile, node: ast.Call) -> None:
        func = node.func
        chain = attribute_chain(func)
        name = (
            chain[-1] if chain else func.id if isinstance(func, ast.Name) else None
        )
        if name not in _CTORS:
            return
        for kw in node.keywords:
            if kw.arg != "dtype":
                continue
            platform = _platform_dtype_name(kw.value)
            if platform is not None:
                self._emit(
                    source, kw.value,
                    f"dtype={platform} is the platform's C long (32-bit on "
                    "Windows) — arrays that cross process or mmap boundaries "
                    "must state np.int64 explicitly",
                )

    # -- origin flow into index sinks ---------------------------------

    def _check_index_use(
        self, facts: FunctionFacts, source: SourceFile, node: ast.Subscript
    ) -> None:
        if isinstance(node.slice, ast.Slice):
            return
        seen: Set[int] = set()
        for sub in ast.walk(node.slice):
            if not isinstance(sub, ast.expr) or id(sub) in seen:
                continue
            seen.add(id(sub))
            fact = facts.fact(sub)
            if fact is None or fact.origin not in _ORIGIN_MESSAGES:
                continue
            self._emit(
                source, sub,
                _ORIGIN_MESSAGES[fact.origin] + " (used as a subscript index here)",
            )
            return  # one finding per subscript is enough signal

    def _check_contract_args(
        self,
        flow: ArrayFlowIndex,
        facts: FunctionFacts,
        source: SourceFile,
        node: ast.Call,
    ) -> None:
        callee_qual = flow.index.resolve_call(node, facts.info)
        if callee_qual is None:
            return
        callee = flow.facts_for(callee_qual)
        if callee is None or callee.contract is None:
            return
        from repro.analysis.flow.arrayshape import _map_args

        for param, arg in _map_args(callee, node):
            spec = callee.contract.params.get(param)
            if spec is None or not spec.dtype.startswith("int"):
                continue
            fact = facts.fact(arg)
            if fact is None or fact.origin not in _ORIGIN_MESSAGES:
                continue
            self._emit(
                source, arg,
                _ORIGIN_MESSAGES[fact.origin]
                + f" (flows into `{param}` of {callee.info.name}(), "
                f"contracted {spec.describe()})",
            )

    # -- plumbing ------------------------------------------------------

    def _emit(self, source: SourceFile, node: ast.AST, message: str) -> None:
        self._findings.setdefault(source.rel, []).append(
            source.finding(self.id, node, message)
        )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
