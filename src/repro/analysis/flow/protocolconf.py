"""R11 — pipe-protocol conformance across the shard process boundary.

The coordinator (:class:`~repro.shard.pool.ShardPool`) and the worker
loop (:func:`~repro.shard.worker.worker_main`) agree on a dict protocol
— ``{"op": ..., ...fields}`` out, one reply back — but that agreement
lives in two files and nothing type-checks a pickle.  A send whose op
the worker does not dispatch fails *at runtime on every shard at once*
(an ``unknown op`` error reply), and a missing required field fails
inside the handler as a ``KeyError`` forwarded back as a string.  Both
are statically visible, and the bit-identity contract of
:mod:`repro.shard.merge` (§5–§6 replay) requires every shard to see
the same, complete message.

What the rule extracts (from ``shard/*.py`` only — the serve layer has
its own, differently-shaped ``op`` protocol):

- **Sends** — every dict literal containing an ``"op"`` key with a
  string constant value; its other string-constant keys are the carried
  fields.  Fields added generically downstream (``dict(msg, id=...)``)
  are credited to every send in the same file.
- **Handlers** — in any function that binds ``op = msg.get("op")``,
  each ``if/elif op == "<name>"`` arm; ``msg["field"]`` subscripts in
  an arm are *required* fields, ``msg.get("field")`` are optional.

Findings: a sent op with no handler arm, a handler arm no send
constructs (dead protocol — or a test hook, which earns a reasoned
noqa), and a send missing a field its handler reads unconditionally.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.graph import FunctionInfo, flow_index
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["PipeProtocolRule"]


def _in_shard(rel: str) -> bool:
    parts = rel.replace("\\", "/").split("/")
    return "shard" in parts[:-1]


class _Send:
    """One ``{"op": ...}`` dict literal on the coordinator side."""

    __slots__ = ("op", "fields", "rel", "line", "col")

    def __init__(self, op: str, fields: Set[str], rel: str, line: int, col: int) -> None:
        self.op = op
        self.fields = fields
        self.rel = rel
        self.line = line
        self.col = col


class _Handler:
    """One ``elif op == "<name>":`` arm of the worker dispatch."""

    __slots__ = ("op", "required", "optional", "rel", "line")

    def __init__(self, op: str, rel: str, line: int) -> None:
        self.op = op
        self.required: Set[str] = set()
        self.optional: Set[str] = set()
        self.rel = rel
        self.line = line


class PipeProtocolRule(Rule):
    id = "R11"
    name = "pipe-protocol"
    summary = (
        "every shard message op must have a worker dispatch arm, every "
        "arm a sender, and every send the fields its handler reads "
        "unconditionally"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        index = flow_index(project)

        sends: List[_Send] = []
        #: rel -> fields added generically via ``dict(msg, field=...)``.
        augmented: Dict[str, Set[str]] = {}
        handlers: Dict[str, _Handler] = {}

        for source in project.sources:
            if source.syntax_error is not None or not _in_shard(source.rel):
                continue
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Dict):
                    send = self._send_of(node, source.rel)
                    if send is not None:
                        sends.append(send)
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "dict"
                    and node.args
                    and node.keywords
                ):
                    bucket = augmented.setdefault(source.rel, set())
                    bucket.update(
                        kw.arg for kw in node.keywords if kw.arg is not None
                    )

        for info in index.iter_functions():
            if not _in_shard(info.rel):
                continue
            self._collect_handlers(info, handlers)

        if not handlers:
            # Partial tree (no worker dispatch parsed): conformance is
            # undecidable, and flagging every send would be pure noise.
            return

        sent_ops = {send.op for send in sends}
        for send in sends:
            handler = handlers.get(send.op)
            if handler is None:
                self._emit(
                    send.rel, send.line, send.col,
                    f"message op '{send.op}' constructed here has no handler "
                    "arm in the worker dispatch (handled ops: "
                    + ", ".join(sorted(handlers)) + ") — the worker will "
                    "reply 'unknown op' on every shard",
                )
                continue
            provided = send.fields | augmented.get(send.rel, set()) | {"op"}
            missing = sorted(handler.required - provided)
            if missing:
                self._emit(
                    send.rel, send.line, send.col,
                    f"message op '{send.op}' lacks required field(s) "
                    + ", ".join(f"'{f}'" for f in missing)
                    + f" — the handler at {handler.rel}:{handler.line} reads "
                    "them unconditionally (msg[...]), so every shard raises",
                )
        for op, handler in sorted(handlers.items()):
            if op not in sent_ops:
                self._emit(
                    handler.rel, handler.line, 0,
                    f"handler arm for op '{op}' is dead — no coordinator "
                    "code constructs this op; delete the arm or the missing "
                    "sender is the bug",
                )

    # -- extraction ----------------------------------------------------

    @staticmethod
    def _send_of(node: ast.Dict, rel: str) -> Optional[_Send]:
        op: Optional[str] = None
        fields: Set[str] = set()
        for key, value in zip(node.keys, node.values):
            if not isinstance(key, ast.Constant) or not isinstance(key.value, str):
                continue
            if key.value == "op":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    op = value.value
            else:
                fields.add(key.value)
        if op is None:
            return None
        return _Send(op, fields, rel, node.lineno, node.col_offset)

    def _collect_handlers(
        self, info: FunctionInfo, handlers: Dict[str, _Handler]
    ) -> None:
        #: name bound via ``<var> = <msg>.get("op")`` -> the msg name.
        op_vars: Dict[str, str] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target, value = node.targets[0], node.value
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "get"
                and isinstance(value.func.value, ast.Name)
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and value.args[0].value == "op"
            ):
                op_vars[target.id] = value.func.value.id
        if not op_vars:
            return
        for node in ast.walk(info.node):
            if not isinstance(node, ast.If):
                continue
            op_name, msg_var = self._dispatch_test(node.test, op_vars)
            if op_name is None or msg_var is None:
                continue
            handler = handlers.setdefault(
                op_name, _Handler(op_name, info.rel, node.test.lineno)
            )
            for inner in node.body:
                for sub in ast.walk(inner):
                    if (
                        isinstance(sub, ast.Subscript)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == msg_var
                    ):
                        key = sub.slice
                        # py3.8 wraps constant indices in ast.Index.
                        if key.__class__.__name__ == "Index":
                            key = key.value  # type: ignore[attr-defined]
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            handler.required.add(key.value)
                    elif (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr == "get"
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == msg_var
                        and sub.args
                        and isinstance(sub.args[0], ast.Constant)
                        and isinstance(sub.args[0].value, str)
                    ):
                        handler.optional.add(sub.args[0].value)

    @staticmethod
    def _dispatch_test(
        test: ast.expr, op_vars: Dict[str, str]
    ) -> Tuple[Optional[str], Optional[str]]:
        if (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], ast.Eq)
            and isinstance(test.left, ast.Name)
            and test.left.id in op_vars
            and len(test.comparators) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and isinstance(test.comparators[0].value, str)
        ):
            return test.comparators[0].value, op_vars[test.left.id]
        return None, None

    def _emit(self, rel: str, line: int, col: int, message: str) -> None:
        self._findings.setdefault(rel, []).append(
            Finding(rule=self.id, path=rel, line=line, col=col, message=message)
        )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
