"""R10 — resource-lifecycle typestate (open → close on every path).

The shard boundary traffics in resources the garbage collector cannot
clean up: ``multiprocessing.shared_memory`` segments survive the
process (a leaked segment is a file in ``/dev/shm`` until reboot),
executors keep non-daemon threads alive, and a :class:`ShardPool` owns
worker *processes*.  PR 6 added a runtime refcount guard that catches
use-after-unmap; this rule is its static complement — the paths the
tests never execute.

The analysis is a small path-sensitive abstract interpreter over each
function body.  A *tracked* value is born OPEN when a resource factory
call is bound to a local name (``SharedMemory(...)``,
``SharedArrayBundle.export/attach(...)``, ``ThreadPoolExecutor`` /
``ProcessPoolExecutor``, ``ShardPool(...)``); it becomes

- **CLOSED** when a release method is called on it (``close``,
  ``unlink``, ``shutdown``, ``stop``, ``terminate``) or it is used as a
  ``with`` context manager, and
- **ESCAPED** when ownership provably leaves the function: the name is
  returned, yielded, passed as a call argument, stored into an
  attribute/subscript/collection literal, or rebound — escape-to-caller
  is a *transfer*, not a leak.

``if``/``else`` branches are joined may-leak-wise (OPEN on either arm
survives the join; ESCAPED dominates, so a conditional transfer never
misfires).  A function exit (explicit ``return`` or falling off the
end) with a tracked value still OPEN is the finding.  **Implicit
exception edges are deliberately ignored**, and an explicit ``raise``
is an exempt exit: error-path cleanup is the runtime sanitizer's job
(segment accounting), and flagging every statement that could throw
would bury the rule in noise.

Ownership annotations close the interprocedural gap::

    def consume(conn, bundle):  # owns: bundle
        ...

``# owns: <param>`` on the ``def`` line makes the named parameter an
in-function obligation: the callee received ownership and must release
(or further transfer) it on every normal path.  The caller side needs
no annotation — passing the value is already an escape.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.graph import FunctionInfo, flow_index
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["ResourceLifecycleRule"]

#: constructor names whose result must be released.
_FACTORY_NAMES = {
    "SharedMemory": "shared-memory segment",
    "ThreadPoolExecutor": "executor",
    "ProcessPoolExecutor": "executor",
    "ShardPool": "shard pool",
}

#: ``Class.method(...)`` factories (last two chain parts).
_FACTORY_METHODS = {
    ("SharedArrayBundle", "export"): "shared-array bundle",
    ("SharedArrayBundle", "attach"): "shared-array bundle",
}

#: method names that release a tracked resource.
_RELEASE_METHODS = frozenset({"close", "unlink", "shutdown", "stop", "terminate"})

# Typestates, by join dominance: ESCAPED > OPEN > CLOSED.
_CLOSED, _OPEN, _ESCAPED = 0, 1, 2


class _Var:
    """One tracked local: state + the open site for the finding."""

    __slots__ = ("state", "line", "col", "kind")

    def __init__(self, state: int, line: int, col: int, kind: str) -> None:
        self.state = state
        self.line = line
        self.col = col
        self.kind = kind

    def copy(self) -> "_Var":
        return _Var(self.state, self.line, self.col, self.kind)


class _State:
    """Abstract store at one program point."""

    __slots__ = ("vars", "live")

    def __init__(self, vars: Optional[Dict[str, _Var]] = None, live: bool = True) -> None:
        self.vars: Dict[str, _Var] = vars if vars is not None else {}
        self.live = live

    def copy(self) -> "_State":
        return _State({k: v.copy() for k, v in self.vars.items()}, self.live)

    def join(self, other: "_State") -> "_State":
        if not self.live:
            return other
        if not other.live:
            return self
        merged: Dict[str, _Var] = {}
        for name in set(self.vars) | set(other.vars):
            a, b = self.vars.get(name), other.vars.get(name)
            if a is None:
                assert b is not None
                merged[name] = b.copy()
            elif b is None:
                merged[name] = a.copy()
            else:
                winner = a if a.state >= b.state else b
                merged[name] = winner.copy()
        return _State(merged, True)


def _factory_kind(value: ast.expr) -> Optional[str]:
    """Resource kind when ``value`` is a tracked factory call."""
    if not isinstance(value, ast.Call):
        return None
    func = value.func
    if isinstance(func, ast.Name):
        return _FACTORY_NAMES.get(func.id)
    chain = attribute_chain(func)
    if chain is None:
        return None
    if len(chain) >= 2:
        method = _FACTORY_METHODS.get((chain[-2], chain[-1]))
        if method is not None:
            return method
    return _FACTORY_NAMES.get(chain[-1])


class _FunctionChecker:
    """Interpret one function body; collect leak findings."""

    def __init__(self, rule: "ResourceLifecycleRule", info: FunctionInfo,
                 owned_params: Tuple[str, ...]) -> None:
        self.rule = rule
        self.info = info
        self.owned_params = owned_params
        #: (name, open line) pairs already reported — one finding per open site.
        self.reported: Set[Tuple[str, int]] = set()

    def run(self) -> None:
        state = _State()
        for name in self.owned_params:
            if name in self.info.params:
                state.vars[name] = _Var(
                    _OPEN, self.info.node.lineno, self.info.node.col_offset,
                    "owned parameter",
                )
        out = self._block(self.info.node.body, state)
        self._check_exit(out, self.info.node.body[-1] if self.info.node.body else None)

    # -- statement interpretation -------------------------------------

    def _block(self, stmts: List[ast.stmt], state: _State) -> _State:
        for stmt in stmts:
            if not state.live:
                break
            state = self._stmt(stmt, state)
        return state

    def _stmt(self, stmt: ast.stmt, state: _State) -> _State:
        if isinstance(stmt, ast.Assign):
            return self._assign(stmt.targets, stmt.value, state)
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return self._assign([stmt.target], stmt.value, state)
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value, state)
            return state
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._escape_names(stmt.value, state)
            self._check_exit(state, stmt)
            state.live = False
            return state
        if isinstance(stmt, ast.Raise):
            # Explicit error exit: exception-path leaks are the runtime
            # segment accounting's territory, not this rule's.
            state.live = False
            return state
        if isinstance(stmt, ast.If):
            self._escape_names(stmt.test, state)
            then = self._block(stmt.body, state.copy())
            other = self._block(stmt.orelse, state.copy())
            return then.join(other)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(stmt, ast.While):
                self._escape_names(stmt.test, state)
            else:
                self._escape_names(stmt.iter, state)
            body = self._block(stmt.body, state.copy())
            joined = state.join(body)
            return self._block(stmt.orelse, joined)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, state)
        if isinstance(stmt, ast.Try):
            body = self._block(stmt.body, state.copy())
            outs = [body]
            for handler in stmt.handlers:
                outs.append(self._block(handler.body, body.copy()))
            merged = outs[0]
            for out in outs[1:]:
                merged = merged.join(out)
            merged = self._block(stmt.orelse, merged)
            return self._block(stmt.finalbody, merged)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested def capturing the resource keeps it reachable —
            # treat any tracked name it mentions as escaped.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and node.id in state.vars:
                    state.vars[node.id].state = _ESCAPED
            return state
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                if name in state.vars:
                    state.vars[name].state = _ESCAPED
            return state
        # Everything else (Pass, Import, Assert, Delete, AugAssign, ...):
        # scan its expressions for uses.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._escape_names(child, state)
        return state

    def _assign(
        self, targets: List[ast.expr], value: ast.expr, state: _State
    ) -> _State:
        kind = _factory_kind(value)
        if kind is not None and len(targets) == 1 and isinstance(targets[0], ast.Name):
            # Arguments of the factory call may themselves be tracked.
            for arg in ast.iter_child_nodes(value):
                self._escape_names(arg, state)
            name = targets[0].id
            prior = state.vars.get(name)
            if prior is not None and prior.state == _OPEN:
                self._report(name, prior)
            state.vars[name] = _Var(_OPEN, value.lineno, value.col_offset, kind)
            return state
        self._expr(value, state)
        for target in targets:
            if isinstance(target, ast.Name):
                # Rebinding drops the old value; if it was OPEN the
                # handle is unreachable from here on.
                prior = state.vars.pop(target.id, None)
                if prior is not None and prior.state == _OPEN:
                    self._report(target.id, prior)
            else:
                self._escape_names(target, state)
        return state

    def _with(self, stmt: ast.stmt, state: _State) -> _State:
        assert isinstance(stmt, (ast.With, ast.AsyncWith))
        closed_after: List[str] = []
        for item in stmt.items:
            ctx = item.context_expr
            kind = _factory_kind(ctx)
            if kind is not None and isinstance(item.optional_vars, ast.Name):
                name = item.optional_vars.id
                state.vars[name] = _Var(_OPEN, ctx.lineno, ctx.col_offset, kind)
                closed_after.append(name)
            elif isinstance(ctx, ast.Name) and ctx.id in state.vars:
                # ``with bundle:`` — the context manager closes it.
                closed_after.append(ctx.id)
            else:
                self._expr(ctx, state)
        out = self._block(stmt.body, state)
        for name in closed_after:
            var = out.vars.get(name)
            if var is not None and var.state == _OPEN:
                var.state = _CLOSED
        return out

    # -- expression handling ------------------------------------------

    def _expr(self, expr: ast.expr, state: _State) -> None:
        """A statement-position expression: release call or plain uses."""
        if isinstance(expr, ast.Call):
            chain = attribute_chain(expr.func)
            if (
                chain is not None
                and len(chain) == 2
                and chain[1] in _RELEASE_METHODS
                and chain[0] in state.vars
            ):
                state.vars[chain[0]].state = _CLOSED
                for arg in ast.iter_child_nodes(expr):
                    if not isinstance(arg, ast.Attribute):
                        self._escape_names(arg, state)
                return
        if isinstance(expr, ast.Await):
            self._expr(expr.value, state)
            return
        self._escape_names(expr, state)

    def _escape_names(self, expr: ast.expr, state: _State) -> None:
        """Mark tracked names used inside ``expr`` as ESCAPED.

        A name that is only the *base* of an attribute/subscript read
        (``bundle.arrays``, ``state["bundle"]`` receivers) is a use,
        not a transfer — ownership moves when the object itself is
        passed on (call argument, collection element, return value).
        """
        for node, parent in _walk_with_parent(expr):
            if not isinstance(node, ast.Name) or not isinstance(node.ctx, ast.Load):
                continue
            if node.id not in state.vars:
                continue
            if isinstance(parent, (ast.Attribute, ast.Subscript)) and parent.value is node:
                continue  # attribute/index read of the resource
            state.vars[node.id].state = _ESCAPED

    # -- reporting -----------------------------------------------------

    def _check_exit(self, state: _State, at: Optional[ast.stmt]) -> None:
        if not state.live:
            return
        del at
        for name, var in state.vars.items():
            if var.state == _OPEN:
                self._report(name, var)

    def _report(self, name: str, var: _Var) -> None:
        key = (name, var.line)
        if key in self.reported:
            return
        self.reported.add(key)
        short = self.info.qual.split("::", 1)[1]
        self.rule.emit(
            self.info.rel, var.line, var.col,
            f"{var.kind} `{name}` opened here can reach the exit of "
            f"`{short}` without close/unlink/shutdown — release it on every "
            "path, or transfer ownership (return/store it, or mark the "
            "receiving parameter with `# owns:`)",
        )


def _walk_with_parent(root: ast.AST) -> Iterator[Tuple[ast.AST, Optional[ast.AST]]]:
    stack: List[Tuple[ast.AST, Optional[ast.AST]]] = [(root, None)]
    while stack:
        node, parent = stack.pop()
        yield node, parent
        for child in ast.iter_child_nodes(node):
            stack.append((child, node))


class ResourceLifecycleRule(Rule):
    id = "R10"
    name = "resource-lifecycle"
    summary = (
        "shared-memory segments, executors, and shard pools must be "
        "closed or have their ownership transferred on every normal path"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def emit(self, rel: str, line: int, col: int, message: str) -> None:
        self._findings.setdefault(rel, []).append(
            Finding(rule=self.id, path=rel, line=line, col=col, message=message)
        )

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        index = flow_index(project)
        for info in index.iter_functions():
            source = index.source_by_rel.get(info.rel)
            owned: Tuple[str, ...] = ()
            if source is not None:
                owned = source.owns.get(info.node.lineno, ())
            _FunctionChecker(self, info, owned).run()

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
