"""R9 — event-loop hygiene (blocking work inside ``async def``).

The asyncio front end (:mod:`repro.serve.server`) multiplexes every
connection over one thread; a single blocking call inside a coroutine
stalls *all* of them — batching windows stretch, deadlines expire, and
the micro-batcher starves, all without a single exception.  The rule
finds the two shapes that cause it:

1. **Blocking sinks reached from coroutine bodies.**  A fixed table of
   blocking primitives (``time.sleep``, sync ``lock.acquire``, pipe
   ``recv``, thread/process ``join``, ``Future.result``, executor
   ``shutdown(wait=True)``, ``open``, and the engine's compute entry
   points ``top_k``/``single_pair``/``preprocess``/``flush``/…) is
   flagged when it appears lexically inside an ``async def``, or inside
   a *sync* project function a coroutine provably calls (transitively,
   over the :class:`~repro.analysis.flow.graph.ProjectIndex` call
   graph).  Work routed through ``run_in_executor``/``asyncio.to_thread``
   is naturally exempt: those sites pass function *references*, which
   create no call edge and no lexical call.

2. **``await`` while a sync lock is held.**  Holding a thread mutex
   across a suspension point hands the lock to the event loop: any
   thread (or executor job) that wants it now blocks until the loop
   resumes this exact coroutine — a deadlock if that thread is what the
   coroutine awaits.  Reuses R6's lexical held-set machinery; locks
   created by asyncio-style factories (``asyncio.Lock()``) are exempt —
   being held across awaits is their job.

Precision notes: nested ``def``/``lambda`` bodies are skipped (they are
overwhelmingly executor payloads and callbacks, and do not run on the
loop at that program point), calls through async callees are not
propagated (the callee's own body gets the finding), and receiver-name
hints gate the generic method sinks (``join``/``result``/``shutdown``)
so ``", ".join(parts)`` never trips the rule.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.graph import FunctionInfo, ProjectIndex, flow_index
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["AsyncHygieneRule"]

#: dotted calls that block by definition (module root, attr).
_BLOCKING_DOTTED = {
    ("time", "sleep"): "time.sleep()",
    ("select", "select"): "select.select()",
}

#: engine compute entry points — CPU-bound by design (Algorithm 5 runs
#: walks); serving code must dispatch them through the executor.
_ENGINE_SINKS = frozenset(
    {"top_k", "single_pair", "preprocess", "flush", "estimate_batch",
     "build_signatures", "top_k_all", "top_k_all_parallel"}
)

#: receiver-name substrings that qualify the generic blocking methods.
_JOIN_HINTS = ("thread", "proc", "worker", "pool", "reader")
_RESULT_HINTS = ("fut",)
_SHUTDOWN_HINTS = ("executor", "pool")


def _hinted(receiver: Tuple[str, ...], hints: Tuple[str, ...]) -> bool:
    return any(h in part.lower() for part in receiver for h in hints)


def _lexical_calls(info: FunctionInfo) -> Iterator[ast.Call]:
    """Every call in the function's own body, skipping nested defs."""
    stack: List[ast.AST] = list(info.node.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class AsyncHygieneRule(Rule):
    id = "R9"
    name = "event-loop-hygiene"
    summary = (
        "coroutine bodies must never block the event loop — blocking "
        "primitives belong on the executor, and sync locks must not be "
        "held across an await"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    # -- sink classification ------------------------------------------

    def _sink(
        self, call: ast.Call, info: FunctionInfo, index: ProjectIndex
    ) -> Optional[str]:
        """Human-readable description of a blocking call, or None."""
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "open":
                return "open() file I/O"
            source = index.source_by_rel.get(info.rel)
            if source is not None:
                qualified = source.aliases.qualified(func.id)
                if qualified in ("time.sleep", "select.select"):
                    return f"{qualified}()"
            return None
        chain = attribute_chain(func)
        if chain is None or len(chain) < 2:
            return None
        dotted = _BLOCKING_DOTTED.get((chain[0], chain[-1]))
        if dotted is not None:
            return dotted
        attr, receiver = chain[-1], chain[:-1]
        if attr == "acquire":
            lock_id = index.resolve_lock_expr(func.value, info)
            if lock_id is not None and lock_id not in index.async_locks:
                return f"sync `{lock_id}`.acquire()"
            return None
        if attr in ("recv", "recv_bytes"):
            return f"pipe/socket .{attr}()"
        if attr == "join" and _hinted(receiver, _JOIN_HINTS):
            return f"`{'.'.join(receiver)}`.join()"
        if attr == "result" and _hinted(receiver, _RESULT_HINTS):
            return f"`{'.'.join(receiver)}`.result()"
        if attr == "shutdown" and _hinted(receiver, _SHUTDOWN_HINTS):
            for kw in call.keywords:
                if kw.arg == "wait" and isinstance(kw.value, ast.Constant):
                    if kw.value.value is False:
                        return None
            return f"`{'.'.join(receiver)}`.shutdown(wait=True)"
        if attr in _ENGINE_SINKS:
            return f"engine compute `{'.'.join(chain)}()`"
        return None

    # -- analysis ------------------------------------------------------

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        index = flow_index(project)

        #: qual -> [(call node, sink description, resolved callee qual)]
        sites: Dict[str, List[Tuple[ast.Call, Optional[str], Optional[str]]]] = {}
        for info in index.iter_functions():
            rows: List[Tuple[ast.Call, Optional[str], Optional[str]]] = []
            for call in _lexical_calls(info):
                sink = self._sink(call, info, index)
                callee = index.resolve_call(call, info)
                if sink is not None or callee is not None:
                    rows.append((call, sink, callee))
            sites[info.qual] = rows

        # Transitive blocking summaries of *sync* functions: a coroutine
        # is not "blocking" to its caller — its own body is checked, and
        # awaiting it yields the loop.
        blocks: Dict[str, str] = {}
        for qual, rows in sites.items():
            info = index.functions[qual]
            if info.is_async:
                continue
            for call, sink, _callee in rows:
                if sink is not None:
                    blocks[qual] = f"{sink} at {info.rel}:{call.lineno}"
                    break
        changed = True
        while changed:
            changed = False
            for qual, rows in sites.items():
                info = index.functions[qual]
                if info.is_async or qual in blocks:
                    continue
                for call, _sink, callee in rows:
                    if callee is None or callee not in blocks:
                        continue
                    callee_info = index.functions.get(callee)
                    if callee_info is not None and callee_info.is_async:
                        continue
                    short = callee.split("::", 1)[1]
                    blocks[qual] = f"`{short}` -> {blocks[callee]}"
                    changed = True
                    break

        for qual, rows in sites.items():
            info = index.functions[qual]
            if not info.is_async:
                continue
            short = qual.split("::", 1)[1]
            for call, sink, callee in rows:
                if sink is not None:
                    self._emit(
                        info.rel, call,
                        f"blocking {sink} inside `async def {short}` stalls "
                        "every connection on the event loop — dispatch it via "
                        "run_in_executor/asyncio.to_thread",
                    )
                    continue
                if callee is not None and callee in blocks:
                    callee_info = index.functions.get(callee)
                    if callee_info is not None and callee_info.is_async:
                        continue
                    callee_short = callee.split("::", 1)[1]
                    self._emit(
                        info.rel, call,
                        f"`async def {short}` calls `{callee_short}`, which "
                        f"blocks ({blocks[callee]}) — route the call through "
                        "the executor or make the callee loop-safe",
                    )

        # await while a sync lock is held.
        for qual, awaits in index.awaits.items():
            info = index.functions[qual]
            short = qual.split("::", 1)[1]
            for site in awaits:
                held_sync = [l for l in site.held if l not in index.async_locks]
                if not held_sync:
                    continue
                locks = ", ".join(f"`{l}`" for l in held_sync)
                self._emit(
                    info.rel, site.node,
                    f"`async def {short}` awaits while holding sync lock(s) "
                    f"{locks} — the loop parks holding a thread mutex and any "
                    "thread needing it deadlocks; use an asyncio.Lock or "
                    "release before the await",
                )

    def _emit(self, rel: str, node: ast.AST, message: str) -> None:
        self._findings.setdefault(rel, []).append(
            Finding(
                rule=self.id,
                path=rel,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
