"""R16 — drift between ``@contract`` declarations and inferred facts.

A contract is only worth its runtime cost while it tells the truth.
Code evolves; the decorator is a string literal nobody's refactoring
tool updates.  This rule cross-checks every declaration against what
the abstract interpreter proved, in both directions — the contract as
a claim about the body, and the body as evidence about the contract:

- **returns drift** — the declared ``returns=`` dtype/rank contradicts
  the fact inferred from the function's own ``return`` statements
  (seeded with the declared *param* specs, so the comparison is
  self-consistent);
- **missing returns** — a contracted function provably returns an
  array (known dtype) but declares no ``returns=`` — the one spec a
  caller would most want is the one missing;
- **call-site dtype drift** — an argument whose proven dtype
  contradicts the callee's declared param spec (the runtime would
  raise on the first call that reaches it; this fires without running);
- **untied parallel arrays** — a boolean mask computed from one
  contracted param (``alive = positions >= 0``) indexes *another*
  contracted param, but their specs share no shape symbol: the code
  requires equal lengths, the contract fails to say so, and the
  runtime check silently under-enforces.  Declaring a shared symbol
  (``positions="int64[W]", segments="int64[W]"``) both documents and
  enforces the invariant.

Same bargain as the rest of the flow package: every check needs two
*known*, conflicting facts — unknown stays silent.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.flow.arrayflow import (
    ArrayFlowIndex,
    FunctionFacts,
    arrayflow_index,
)
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["ContractDriftRule"]


class ContractDriftRule(Rule):
    id = "R16"
    name = "contract-drift"
    summary = (
        "@contract declarations must agree with inferred facts: returns "
        "dtype/rank, call-site argument dtypes, array params without "
        "specs, and mask-coupled parallel arrays without a shared shape "
        "symbol"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        flow = arrayflow_index(project)
        for facts in flow.functions.values():
            source = flow.index.source_by_rel.get(facts.info.rel)
            if source is None:
                continue
            if facts.contract is not None:
                self._check_returns(facts, source)
                self._check_unspecced_params(facts, source)
                self._check_parallel_arrays(facts, source)
            self._check_call_sites(flow, facts, source)

    # -- declaration vs body ------------------------------------------

    def _check_returns(self, facts: FunctionFacts, source: SourceFile) -> None:
        contract = facts.contract
        assert contract is not None
        inferred = facts.return_fact
        declared = contract.returns
        if declared is None:
            if inferred is not None and inferred.dtype is not None:
                self._emit(
                    source, contract.node,
                    f"{facts.info.name}() provably returns a "
                    f"{inferred.describe()} array but its @contract declares "
                    "no returns= spec — callers lose the one fact the "
                    "runtime could enforce for them",
                )
            return
        if inferred is None:
            return
        if (
            inferred.dtype is not None
            and declared.dtype != inferred.dtype
        ):
            self._emit(
                source, contract.node,
                f"@contract on {facts.info.name}() declares "
                f"returns=\"{declared.describe()}\" but the body provably "
                f"returns {inferred.describe()} — the spec has drifted from "
                "the code",
            )
            return
        if (
            declared.ndim is not None
            and inferred.rank is not None
            and declared.ndim != inferred.rank
        ):
            self._emit(
                source, contract.node,
                f"@contract on {facts.info.name}() declares returns rank "
                f"{declared.ndim} but the body provably returns rank "
                f"{inferred.rank} ({inferred.describe()})",
            )

    def _check_unspecced_params(
        self, facts: FunctionFacts, source: SourceFile
    ) -> None:
        contract = facts.contract
        assert contract is not None
        for param, classes in facts.info.param_classes.items():
            if "ndarray" not in classes:
                continue
            if param in contract.params:
                continue
            self._emit(
                source, contract.node,
                f"parameter `{param}` of {facts.info.name}() is annotated "
                "np.ndarray but the @contract declares no spec for it — "
                "the runtime validates every other array argument except "
                "this one",
            )

    # -- call sites ----------------------------------------------------

    def _check_call_sites(
        self, flow: ArrayFlowIndex, facts: FunctionFacts, source: SourceFile
    ) -> None:
        from repro.analysis.flow.arrayshape import _map_args

        for site in flow.index.calls.get(facts.info.qual, ()):
            if site.callee is None:
                continue
            callee = flow.facts_for(site.callee)
            if callee is None or callee.contract is None:
                continue
            for param, arg in _map_args(callee, site.node):
                spec = callee.contract.params.get(param)
                if spec is None:
                    continue
                fact = facts.fact(arg)
                if fact is None or fact.dtype is None:
                    continue
                if fact.dtype != spec.dtype:
                    self._emit(
                        source, arg,
                        f"argument `{param}` of {callee.info.name}() is "
                        f"proven {fact.describe()} but the contract requires "
                        f"{spec.describe()} — the runtime will reject this "
                        "call",
                    )

    # -- parallel arrays -----------------------------------------------

    def _check_parallel_arrays(
        self, facts: FunctionFacts, source: SourceFile
    ) -> None:
        contract = facts.contract
        assert contract is not None
        for node in ast.walk(facts.info.node):
            if not isinstance(node, ast.Subscript) or not isinstance(
                node.value, ast.Name
            ):
                continue
            indexed = node.value.id
            mask_param = self._mask_param(facts, node.slice)
            if mask_param is None or indexed == mask_param:
                continue
            spec_indexed = contract.params.get(indexed)
            spec_mask = contract.params.get(mask_param)
            if spec_indexed is None or spec_mask is None:
                continue
            shared = set(spec_indexed.symbols()) & set(spec_mask.symbols())
            if shared:
                continue
            self._emit(
                source, node,
                f"`{indexed}` is indexed by a mask of `{mask_param}` — the "
                "code requires equal lengths, but their contract specs "
                f"({spec_indexed.describe()} / {spec_mask.describe()}) share "
                "no shape symbol, so the runtime never enforces it; declare "
                "a common symbol (e.g. int64[W] on both)",
            )

    @staticmethod
    def _mask_param(facts: FunctionFacts, slice_node: ast.expr) -> Optional[str]:
        """Contracted param a mask subscript traces to, or None.

        Two spellings: a named mask recorded by the evaluator
        (``alive = positions >= 0`` then ``x[alive]``), or the inline
        form ``x[positions >= 0]``.
        """
        if isinstance(slice_node, ast.Name):
            return facts.mask_sources.get(slice_node.id)
        if isinstance(slice_node, ast.Compare) and isinstance(
            slice_node.left, ast.Name
        ):
            contract = facts.contract
            if contract is not None and slice_node.left.id in contract.params:
                return slice_node.left.id
        return None

    # -- plumbing ------------------------------------------------------

    def _emit(self, source: SourceFile, node: ast.AST, message: str) -> None:
        self._findings.setdefault(source.rel, []).append(
            source.finding(self.id, node, message)
        )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
