"""R6 — lock-order consistency (static deadlock detection).

Two threads deadlock when one acquires lock A then B while the other
acquires B then A.  The serve layer has exactly this shape available:
``DynamicSimRankEngine.flush`` holds ``_state_lock`` and (via its flush
listeners) can reach ``EngineHandle.swap`` which takes the handle's
``_lock``, while request threads hold snapshots and call back into the
dynamic engine.  The shipped code is safe because listeners fire
*outside* the critical section — R6 is the rule that keeps it that way.

The check: every ``with <lock>:`` acquisition is recorded together with
the locks lexically held at that point, and every call made under a
held lock contributes the callee's *transitive* acquisitions (computed
to fixpoint over the project call graph).  That yields a directed
acquisition-order graph over lock ids; any cycle means two code paths
disagree about the global order and can deadlock under the right
interleaving.  Each cycle is reported once, anchored at one witness
edge, with every participating edge's location in the message.

Reentrant re-acquisition of the *same* lock contributes no edge (the
shipped RLocks allow it; ordering is about distinct locks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow.graph import flow_index
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["LockOrderRule"]


class _Edge:
    """``held -> acquired`` with the program point that witnesses it."""

    __slots__ = ("held", "acquired", "rel", "line", "detail")

    def __init__(self, held: str, acquired: str, rel: str, line: int, detail: str) -> None:
        self.held = held
        self.acquired = acquired
        self.rel = rel
        self.line = line
        self.detail = detail

    def describe(self) -> str:
        return f"`{self.held}` -> `{self.acquired}` ({self.rel}:{self.line}, {self.detail})"


class LockOrderRule(Rule):
    id = "R6"
    name = "lock-order"
    summary = (
        "all code paths must acquire locks in one global order — a cycle in "
        "the acquisition-order graph is a deadlock waiting for its interleaving"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        index = flow_index(project)
        transitive = index.transitive_acquisitions()

        edges: Dict[Tuple[str, str], _Edge] = {}

        def add_edge(held: str, acquired: str, rel: str, line: int, detail: str) -> None:
            if held == acquired:
                return  # reentrant same-lock; ordering is about distinct locks
            edges.setdefault((held, acquired), _Edge(held, acquired, rel, line, detail))

        for qual, acquisitions in index.acquisitions.items():
            info = index.functions[qual]
            short = qual.split("::", 1)[1]
            for acq in acquisitions:
                for held in acq.held:
                    add_edge(
                        held,
                        acq.lock_id,
                        info.rel,
                        acq.line,
                        f"`{short}` acquires it while holding `{held}`",
                    )
        for qual, sites in index.calls.items():
            info = index.functions[qual]
            short = qual.split("::", 1)[1]
            for site in sites:
                if not site.held or site.callee is None:
                    continue
                callee_short = site.callee.split("::", 1)[1]
                for acquired in transitive.get(site.callee, ()):
                    for held in site.held:
                        add_edge(
                            held,
                            acquired,
                            info.rel,
                            site.node.lineno,
                            f"`{short}` calls `{callee_short}` (which may acquire "
                            f"it) while holding `{held}`",
                        )

        succ: Dict[str, Set[str]] = {}
        for held, acquired in edges:
            succ.setdefault(held, set()).add(acquired)

        reported: Set[frozenset] = set()
        for (held, acquired), edge in sorted(
            edges.items(), key=lambda item: (item[1].rel, item[1].line)
        ):
            path = self._find_path(succ, acquired, held)
            if path is None:
                continue
            # path is acquired -> ... -> held; closing edge held -> acquired
            # completes the cycle.
            cycle_nodes = frozenset(path)
            if cycle_nodes in reported:
                continue
            reported.add(cycle_nodes)
            cycle_edges = [edge]
            for a, b in zip(path, path[1:]):
                witness = edges.get((a, b))
                if witness is not None:
                    cycle_edges.append(witness)
            rendered = "; ".join(e.describe() for e in cycle_edges)
            finding = Finding(
                rule=self.id,
                path=edge.rel,
                line=edge.line,
                col=0,
                message=(
                    "lock-order cycle: "
                    + " -> ".join(f"`{n}`" for n in [held, *path])
                    + " — two code paths acquire these locks in opposite "
                    "orders and can deadlock; edges: "
                    + rendered
                ),
            )
            self._findings.setdefault(edge.rel, []).append(finding)

    @staticmethod
    def _find_path(
        succ: Dict[str, Set[str]], start: str, goal: str
    ) -> Optional[List[str]]:
        """Shortest ``start -> ... -> goal`` path in the order graph."""
        if start == goal:
            return [start]
        frontier: List[List[str]] = [[start]]
        seen = {start}
        while frontier:
            next_frontier: List[List[str]] = []
            for path in frontier:
                for node in sorted(succ.get(path[-1], ())):
                    if node == goal:
                        return path + [node]
                    if node not in seen:
                        seen.add(node)
                        next_frontier.append(path + [node])
            frontier = next_frontier
        return None

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
