"""R13 — shape/broadcast conformance over the array-flow facts.

The array kernels never check shapes at runtime beyond what
``@contract`` declares; numpy broadcasting silently *accepts* many
shape bugs (a ``(T, R)`` against a ``(T,)`` pairs rows with the wrong
axis instead of failing).  This rule replays every shape-relevant site
against the facts the abstract interpreter
(:mod:`~repro.analysis.flow.arrayflow`) proved:

- **elementwise operations** — a ``BinOp``/``Compare`` whose operand
  shapes cannot broadcast: two concrete extents that differ with
  neither 1, or two *different* contract shape symbols on one axis
  (``x: float64[T]`` + ``y: float64[R]`` — if they were always equal
  the author would have written one symbol);
- **concatenation** — ``np.concatenate([...])`` over a literal list
  whose element ranks differ, or whose trailing (non-axis-0) concrete
  dims conflict;
- **reshape** — more than one ``-1`` wildcard (numpy raises, but only
  on the first call that reaches the line);
- **contracted call sites** — interprocedural, via the per-function
  summaries: an argument whose proven rank contradicts the callee's
  declared ``[<n>d]``/``[D1, ...]`` rank, and per-call shape-symbol
  binding (two arguments whose specs share a symbol but whose proven
  concrete extents differ).

All checks require *two known facts in conflict* — unknown never
fires, the precision-first bargain of the flow package.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Union

from repro.analysis.findings import Finding
from repro.analysis.flow.arrayflow import (
    ArrayFlowIndex,
    FunctionFacts,
    arrayflow_index,
    broadcast_conflict,
)
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["ShapeConformanceRule"]


def _np_aliases(source: SourceFile) -> Set[str]:
    return set(source.aliases.module_alias_for("numpy"))


def _np_func_name(func: ast.expr, aliases: Set[str], source: SourceFile) -> Optional[str]:
    chain = attribute_chain(func)
    if chain is not None and len(chain) == 2 and chain[0] in aliases:
        return chain[1]
    if isinstance(func, ast.Name):
        qualified = source.aliases.qualified(func.id)
        if qualified is not None and qualified.startswith("numpy."):
            return qualified.split(".", 1)[1]
    return None


class ShapeConformanceRule(Rule):
    id = "R13"
    name = "shape-conformance"
    summary = (
        "array shapes proven by the flow interpreter must broadcast at "
        "ufunc/concatenate/reshape sites and match contracted ranks at "
        "call sites"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        flow = arrayflow_index(project)
        for facts in flow.functions.values():
            source = flow.index.source_by_rel.get(facts.info.rel)
            if source is None:
                continue
            self._scan_function(flow, facts, source)

    def _scan_function(
        self, flow: ArrayFlowIndex, facts: FunctionFacts, source: SourceFile
    ) -> None:
        symbols = facts.contract.symbols() if facts.contract is not None else set()
        aliases = _np_aliases(source)
        for node in ast.walk(facts.info.node):
            if isinstance(node, ast.BinOp):
                self._check_elementwise(facts, source, node, node.left, node.right, symbols)
            elif isinstance(node, ast.Compare) and node.comparators:
                self._check_elementwise(
                    facts, source, node, node.left, node.comparators[0], symbols
                )
            elif isinstance(node, ast.Call):
                name = _np_func_name(node.func, aliases, source)
                if name == "concatenate" and node.args:
                    self._check_concatenate(facts, source, node)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "reshape"
                ):
                    self._check_reshape(source, node)
                self._check_contract_call(flow, facts, source, node)

    # -- elementwise ---------------------------------------------------

    def _check_elementwise(
        self,
        facts: FunctionFacts,
        source: SourceFile,
        node: Union[ast.BinOp, ast.Compare],
        left: ast.expr,
        right: ast.expr,
        symbols: Set[str],
    ) -> None:
        lf, rf = facts.fact(left), facts.fact(right)
        if lf is None or rf is None or lf.shape is None or rf.shape is None:
            return
        conflict = broadcast_conflict(lf.shape, rf.shape, symbols)
        if conflict is None:
            return
        axis, da, db = conflict
        self._emit(
            source, node,
            f"operands with shapes {lf.describe()} and {rf.describe()} cannot "
            f"broadcast — axis -{axis} pairs extent {da} with {db} "
            "(numpy would raise, or worse, broadcast the wrong axes)",
        )

    # -- concatenate / reshape ----------------------------------------

    def _check_concatenate(
        self, facts: FunctionFacts, source: SourceFile, node: ast.Call
    ) -> None:
        seq = node.args[0]
        if not isinstance(seq, (ast.List, ast.Tuple)):
            return
        element_facts = [facts.fact(elt) for elt in seq.elts]
        shaped = [f for f in element_facts if f is not None and f.shape is not None]
        if len(shaped) < 2:
            return
        ranks = {len(f.shape) for f in shaped}  # type: ignore[arg-type]
        if len(ranks) > 1:
            self._emit(
                source, node,
                "np.concatenate over arrays of different ranks "
                f"({', '.join(sorted(f.describe() for f in shaped))}) — "
                "concatenation requires equal ranks",
            )
            return
        # Default axis 0: every trailing dim must agree where concrete.
        has_axis = any(kw.arg == "axis" for kw in node.keywords) or len(node.args) > 1
        if has_axis:
            return
        rank = ranks.pop()
        for axis in range(1, rank):
            dims = {
                f.shape[axis]  # type: ignore[index]
                for f in shaped
                if isinstance(f.shape[axis], int)  # type: ignore[index]
            }
            if len(dims) > 1:
                self._emit(
                    source, node,
                    f"np.concatenate along axis 0 with conflicting extents "
                    f"{sorted(dims)} on axis {axis} — off-axis dims must match",
                )
                return

    def _check_reshape(self, source: SourceFile, node: ast.Call) -> None:
        args = node.args
        if len(args) == 1 and isinstance(args[0], ast.Tuple):
            args = args[0].elts
        # ``-1`` parses as UnaryOp(USub, Constant(1)), never Constant(-1).
        wildcards = sum(
            1
            for arg in args
            if isinstance(arg, ast.UnaryOp)
            and isinstance(arg.op, ast.USub)
            and isinstance(arg.operand, ast.Constant)
            and arg.operand.value == 1
        )
        if wildcards > 1:
            self._emit(
                source, node,
                "reshape with more than one -1 wildcard — numpy cannot infer "
                "two free dimensions",
            )

    # -- contracted call sites ----------------------------------------

    def _check_contract_call(
        self,
        flow: ArrayFlowIndex,
        facts: FunctionFacts,
        source: SourceFile,
        node: ast.Call,
    ) -> None:
        callee_qual = flow.index.resolve_call(node, facts.info)
        if callee_qual is None:
            return
        callee = flow.facts_for(callee_qual)
        if callee is None or callee.contract is None:
            return
        bindings: Dict[str, int] = {}
        for param, arg in _map_args(callee, node):
            spec = callee.contract.params.get(param)
            if spec is None:
                continue
            fact = facts.fact(arg)
            if fact is None or fact.shape is None:
                continue
            if spec.ndim is not None and len(fact.shape) != spec.ndim:
                self._emit(
                    source, arg,
                    f"argument `{param}` of {callee.info.name}() has proven "
                    f"shape {fact.describe()} but the contract requires "
                    f"{spec.describe()} (rank {spec.ndim})",
                )
                continue
            if spec.dims is None:
                continue
            for sym, dim in zip(spec.dims, fact.shape):
                if not isinstance(sym, str) or not isinstance(dim, int):
                    continue
                bound = bindings.get(sym)
                if bound is None:
                    bindings[sym] = dim
                elif bound != dim:
                    self._emit(
                        source, arg,
                        f"call to {callee.info.name}() binds shape symbol "
                        f"`{sym}` to both {bound} and {dim} — arguments "
                        "sharing a symbol must share that extent",
                    )

    # -- plumbing ------------------------------------------------------

    def _emit(self, source: SourceFile, node: ast.AST, message: str) -> None:
        self._findings.setdefault(source.rel, []).append(
            source.finding(self.id, node, message)
        )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])


def _map_args(
    callee: FunctionFacts, call: ast.Call
) -> Iterator["tuple[str, ast.expr]"]:
    """(param name, argument expr) pairs of one call, positionally and
    by keyword, honouring the implicit ``self`` of attribute calls."""
    params = list(callee.info.params)
    offset = 0
    if (
        isinstance(call.func, ast.Attribute)
        and params
        and params[0] in ("self", "cls")
    ):
        offset = 1
    for index, arg in enumerate(call.args):
        slot = index + offset
        if slot < len(params):
            yield params[slot], arg
    for kw in call.keywords:
        if kw.arg is not None:
            yield kw.arg, kw.value
