"""The whole-program view behind the flow rules (R6–R8).

Where the per-file rules (R1–R5) each walk one AST, the flow rules need
facts that only exist across files: who calls whom, which attribute is
a lock, what a function does to its parameters.  :class:`ProjectIndex`
computes those once per lint run (memoised on the
:class:`~repro.analysis.runner.Project`) and the three rules read it.

Everything here is *name-based and precision-first*, the same bargain
R5 strikes for dtype contracts: an edge or resolution is only recorded
when the name is unambiguous (``self.m()`` inside the defining class, a
module alias from the import table, a method name defined by exactly
one class project-wide).  Ambiguity means silence, never a guess — a
whole-program rule that cries wolf is deleted within a month.

Vocabulary:

- **function** — module-level ``def`` or a method; nested ``def``s and
  lambdas are scanned as part of their enclosing function but with an
  empty held-lock context (they typically outlive the critical section
  that created them — same rule R1 applies lexically).
- **lock id** — ``Class.attr`` for instance locks created in a class
  (``self._lock = threading.Lock()`` / ``make_lock(...)``),
  ``module.py::NAME`` for module-level locks.
- **qual** — a function's stable key, ``rel::Class.method`` or
  ``rel::function``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = [
    "Acquisition",
    "AwaitSite",
    "CallSite",
    "FunctionInfo",
    "LockDef",
    "ProjectIndex",
    "flow_index",
]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Constructor names that create a lock object.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "make_lock", "make_rlock", "allocate_lock"})

#: Module roots whose lock factories yield *event-loop* locks — held
#: across awaits by design, invisible to threads, and therefore exempt
#: from the sync-lock rules (R9's await-under-lock check in particular).
_ASYNC_LOCK_ROOTS = frozenset({"asyncio", "anyio", "trio", "curio"})

#: Method names too generic to resolve by project-wide uniqueness.
_GENERIC_METHODS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "sort", "reverse", "get", "items", "keys",
        "values", "copy", "add", "discard", "join", "split", "strip",
        "format", "render", "close", "open", "read", "write", "run",
        "start", "result", "done", "put", "take", "acquire", "release",
    }
)


def _dotted_module(rel: str) -> str:
    """Best-effort dotted module path of a repo-relative file path."""
    path = rel.replace("\\", "/")
    if path.endswith(".py"):
        path = path[: -len(".py")]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    parts = [p for p in path.split("/") if p not in ("src", ".")]
    return ".".join(parts)


def _annotation_names(annotation: Optional[ast.expr]) -> Set[str]:
    """Every identifier mentioned in an annotation (handles string forms)."""
    names: Set[str] = set()
    if annotation is None:
        return names
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            for token in node.value.replace("[", " ").replace("]", " ").replace(
                ",", " "
            ).replace(".", " ").split():
                if token.isidentifier():
                    names.add(token)
    return names


class FunctionInfo:
    """One function/method definition and its local annotation facts."""

    __slots__ = (
        "qual", "rel", "module", "cls", "name", "node", "params",
        "param_classes", "is_async",
    )

    def __init__(
        self,
        rel: str,
        module: str,
        cls: Optional[str],
        node: _FunctionNode,
    ) -> None:
        self.rel = rel
        self.module = module
        self.cls = cls
        self.name = node.name
        self.qual = f"{rel}::{cls + '.' if cls else ''}{node.name}"
        self.node = node
        self.is_async = isinstance(node, ast.AsyncFunctionDef)
        args = node.args
        ordered = [*args.posonlyargs, *args.args]
        self.params: List[str] = [a.arg for a in ordered]
        #: param name -> class names its annotation mentions.
        self.param_classes: Dict[str, Set[str]] = {
            a.arg: _annotation_names(a.annotation)
            for a in [*ordered, *args.kwonlyargs]
            if a.annotation is not None
        }

    def __repr__(self) -> str:
        return f"<FunctionInfo {self.qual}>"


class LockDef:
    """One lock-valued attribute or module global."""

    __slots__ = ("lock_id", "cls", "attr", "rel", "line", "is_async")

    def __init__(
        self,
        lock_id: str,
        cls: Optional[str],
        attr: str,
        rel: str,
        line: int,
        is_async: bool = False,
    ) -> None:
        self.lock_id = lock_id
        self.cls = cls
        self.attr = attr
        self.rel = rel
        self.line = line
        #: created by an asyncio/anyio factory — an event-loop lock, not
        #: a thread mutex (R9 never flags awaits under one of these).
        self.is_async = is_async


class Acquisition:
    """A ``with <lock>:`` entry inside one function."""

    __slots__ = ("lock_id", "line", "held")

    def __init__(self, lock_id: str, line: int, held: Tuple[str, ...]) -> None:
        self.lock_id = lock_id
        self.line = line
        #: lock ids lexically held when this acquisition happens.
        self.held = held


class CallSite:
    """One call expression inside a function, with its lock context."""

    __slots__ = ("callee", "node", "held")

    def __init__(self, callee: Optional[str], node: ast.Call, held: Tuple[str, ...]) -> None:
        #: qual of the resolved callee, or None when ambiguous/external.
        self.callee = callee
        self.node = node
        self.held = held


class AwaitSite:
    """One ``await`` expression inside a function, with its lock context."""

    __slots__ = ("node", "held")

    def __init__(self, node: ast.Await, held: Tuple[str, ...]) -> None:
        self.node = node
        #: lock ids lexically held when control yields to the loop.
        self.held = held


class ProjectIndex:
    """Call graph + lock model of one lint invocation."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self._methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self._functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self._methods_by_class: Dict[Tuple[str, str], FunctionInfo] = {}
        self.class_files: Dict[str, List[str]] = {}
        #: lock attr name -> definitions (usually exactly one class).
        self.lock_attrs: Dict[str, List[LockDef]] = {}
        #: (module rel, NAME) module-level locks.
        self.module_locks: Dict[Tuple[str, str], LockDef] = {}
        #: lock ids created by asyncio-style factories (see LockDef.is_async).
        self.async_locks: Set[str] = set()
        self.acquisitions: Dict[str, List[Acquisition]] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        self.awaits: Dict[str, List[AwaitSite]] = {}
        self.source_by_rel: Dict[str, SourceFile] = {}
        self._collect_definitions()
        self._scan_bodies()

    # ------------------------------------------------------------------
    # Pass 1: definitions
    # ------------------------------------------------------------------

    def _collect_definitions(self) -> None:
        for source in self.project.sources:
            if source.syntax_error is not None:
                continue
            self.source_by_rel[source.rel] = source
            module = _dotted_module(source.rel)
            for stmt in source.tree.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(source.rel, module, None, stmt)
                elif isinstance(stmt, ast.ClassDef):
                    self.class_files.setdefault(stmt.name, []).append(source.rel)
                    for inner in stmt.body:
                        if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            self._add_function(source.rel, module, stmt.name, inner)
                    self._collect_class_locks(source.rel, stmt)
                elif self._is_lock_assign(stmt):
                    target = stmt.targets[0]  # type: ignore[union-attr]
                    assert isinstance(target, ast.Name)
                    lock_id = f"{source.rel}::{target.id}"
                    is_async = self._is_async_lock_factory(stmt.value)  # type: ignore[union-attr]
                    self.module_locks[(source.rel, target.id)] = LockDef(
                        lock_id, None, target.id, source.rel, stmt.lineno, is_async
                    )
                    if is_async:
                        self.async_locks.add(lock_id)

    def _add_function(
        self, rel: str, module: str, cls: Optional[str], node: _FunctionNode
    ) -> None:
        info = FunctionInfo(rel, module, cls, node)
        self.functions[info.qual] = info
        if cls is None:
            self._functions_by_name.setdefault(info.name, []).append(info)
        else:
            self._methods_by_name.setdefault(info.name, []).append(info)
            self._methods_by_class[(cls, info.name)] = info

    @staticmethod
    def _is_lock_factory(value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _LOCK_FACTORIES

    @staticmethod
    def _is_async_lock_factory(value: ast.expr) -> bool:
        """``asyncio.Lock()``-style factories: event-loop locks."""
        if not isinstance(value, ast.Call):
            return False
        chain = attribute_chain(value.func)
        return chain is not None and len(chain) >= 2 and chain[0] in _ASYNC_LOCK_ROOTS

    def _is_lock_assign(self, stmt: ast.stmt) -> bool:
        return (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and self._is_lock_factory(stmt.value)
        )

    def _collect_class_locks(self, rel: str, cls: ast.ClassDef) -> None:
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and self._is_lock_factory(node.value):
                for target in node.targets:
                    chain = attribute_chain(target)
                    if chain is not None and len(chain) == 2 and chain[0] == "self":
                        attr = chain[1]
                        lock_id = f"{cls.name}.{attr}"
                        is_async = self._is_async_lock_factory(node.value)
                        self.lock_attrs.setdefault(attr, []).append(
                            LockDef(lock_id, cls.name, attr, rel, node.lineno, is_async)
                        )
                        if is_async:
                            self.async_locks.add(lock_id)

    # ------------------------------------------------------------------
    # Pass 2: bodies (acquisitions + call sites, with held-lock context)
    # ------------------------------------------------------------------

    def _scan_bodies(self) -> None:
        for info in self.functions.values():
            scanner = _BodyScanner(self, info)
            for child in info.node.body:
                scanner.visit(child)
            self.acquisitions[info.qual] = scanner.acquisitions
            self.calls[info.qual] = scanner.calls
            self.awaits[info.qual] = scanner.awaits

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_lock_expr(self, expr: ast.expr, info: FunctionInfo) -> Optional[str]:
        """Lock id of ``expr`` when it names a known lock, else None."""
        chain = attribute_chain(expr)
        if chain is None:
            return None
        if len(chain) == 1:
            lock = self.module_locks.get((info.rel, chain[0]))
            return lock.lock_id if lock is not None else None
        if len(chain) == 2:
            root, attr = chain
            defs = self.lock_attrs.get(attr, ())
            if not defs:
                return None
            if root == "self" and info.cls is not None:
                for lock in defs:
                    if lock.cls == info.cls:
                        return lock.lock_id
            owner_classes = info.param_classes.get(root, set())
            for lock in defs:
                if lock.cls in owner_classes:
                    return lock.lock_id
            if root != "self" and len({lock.lock_id for lock in defs}) == 1:
                return defs[0].lock_id
        return None

    def resolve_call(self, call: ast.Call, info: FunctionInfo) -> Optional[str]:
        """Qual of the called project function, or None when not provable."""
        func = call.func
        source = self.source_by_rel.get(info.rel)
        aliases = source.aliases if source is not None else None
        if isinstance(func, ast.Name):
            name = func.id
            if aliases is not None:
                qualified = aliases.qualified(name)
                if qualified is not None:
                    target = self._by_dotted(qualified)
                    if target is not None:
                        return target.qual
            candidates = [
                f for f in self._functions_by_name.get(name, []) if f.rel == info.rel
            ] or self._functions_by_name.get(name, [])
            if len(candidates) == 1:
                return candidates[0].qual
            init = self._methods_by_class.get((name, "__init__"))
            if init is not None and len(self.class_files.get(name, [])) == 1:
                return init.qual
            return None
        chain = attribute_chain(func)
        if chain is None or len(chain) != 2:
            return None
        root, method = chain
        if root == "self" and info.cls is not None:
            own = self._methods_by_class.get((info.cls, method))
            if own is not None:
                return own.qual
        if aliases is not None and root in aliases.modules:
            target = self._by_dotted(f"{aliases.modules[root]}.{method}")
            if target is not None:
                return target.qual
        for cls_name in info.param_classes.get(root, set()):
            bound = self._methods_by_class.get((cls_name, method))
            if bound is not None:
                return bound.qual
        if method not in _GENERIC_METHODS:
            candidates = self._methods_by_name.get(method, [])
            if len(candidates) == 1 and not self._functions_by_name.get(method):
                return candidates[0].qual
        return None

    def _by_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """A module-level function addressed as ``pkg.module.func``."""
        module, _, name = dotted.rpartition(".")
        if not module:
            return None
        for candidate in self._functions_by_name.get(name, []):
            if candidate.module == module or candidate.module.endswith("." + module) or (
                module.endswith("." + candidate.module) if candidate.module else False
            ):
                return candidate
        return None

    # ------------------------------------------------------------------
    # Derived facts
    # ------------------------------------------------------------------

    def transitive_acquisitions(self) -> Dict[str, Set[str]]:
        """For every function: all lock ids it may acquire, transitively."""
        direct: Dict[str, Set[str]] = {
            qual: {a.lock_id for a in acqs} for qual, acqs in self.acquisitions.items()
        }
        result = {qual: set(locks) for qual, locks in direct.items()}
        changed = True
        while changed:
            changed = False
            for qual, sites in self.calls.items():
                bucket = result.setdefault(qual, set())
                for site in sites:
                    if site.callee is None:
                        continue
                    extra = result.get(site.callee)
                    if extra and not extra.issubset(bucket):
                        bucket.update(extra)
                        changed = True
        return result

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())

    def method_params(self, qual: str) -> Sequence[str]:
        info = self.functions.get(qual)
        return info.params if info is not None else ()


class _BodyScanner(ast.NodeVisitor):
    """Collect acquisitions and call sites with lexical held-lock context."""

    def __init__(self, index: ProjectIndex, info: FunctionInfo) -> None:
        self.index = index
        self.info = info
        self.held: List[str] = []
        self.acquisitions: List[Acquisition] = []
        self.calls: List[CallSite] = []
        self.awaits: List[AwaitSite] = []

    def _visit_with(self, node: Union[ast.With, ast.AsyncWith]) -> None:
        acquired: List[str] = []
        for item in node.items:
            lock_id = self.index.resolve_lock_expr(item.context_expr, self.info)
            if lock_id is not None:
                self.acquisitions.append(
                    Acquisition(lock_id, node.lineno, tuple(self.held + acquired))
                )
                acquired.append(lock_id)
            else:
                # Non-lock context managers may still contain calls.
                self.visit(item.context_expr)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        for _ in acquired:
            self.held.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_nested(self, node: ast.AST) -> None:
        outer = self.held
        self.held = []
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.held = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_nested(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_nested(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = self.index.resolve_call(node, self.info)
        self.calls.append(CallSite(callee, node, tuple(self.held)))
        self.generic_visit(node)

    def visit_Await(self, node: ast.Await) -> None:
        self.awaits.append(AwaitSite(node, tuple(self.held)))
        self.generic_visit(node)


def flow_index(project: "Project") -> ProjectIndex:
    """The (memoised) :class:`ProjectIndex` of ``project``."""
    cached = getattr(project, "_flow_index", None)
    if cached is None:
        cached = ProjectIndex(project)
        project._flow_index = cached  # type: ignore[attr-defined]
    return cached
