"""Interprocedural flow rules (R6–R16) of the project linter.

Where ``repro.analysis.rules`` holds the per-file rules, this package
holds the whole-program ones: a call graph and lock-acquisition model
(:mod:`~repro.analysis.flow.graph`) feeding lock-order consistency
(R6), RNG-stream purity across dispatch boundaries (R7), escape
analysis for published snapshots (R8), event-loop hygiene (R9),
resource-lifecycle typestate (R10), shard pipe-protocol conformance
(R11), and metrics-catalog conformance (R12); plus the array-flow
rules built on the shape/dtype abstract interpreter
(:mod:`~repro.analysis.flow.arrayflow`): shape/broadcast conformance
(R13), index-dtype discipline (R14), hot-path allocation hygiene
(R15), and contract drift (R16).  They run behind ``repro lint
--flow`` — strictly additive to the default rule set.
"""

from __future__ import annotations

from typing import List

from repro.analysis.flow.graph import ProjectIndex, flow_index
from repro.analysis.rules import Rule

__all__ = ["ProjectIndex", "flow_index", "flow_rules"]


def flow_rules() -> List[Rule]:
    """Fresh instances of the flow rules, in id order."""
    from repro.analysis.flow.allochygiene import AllocHygieneRule
    from repro.analysis.flow.arrayshape import ShapeConformanceRule
    from repro.analysis.flow.asynchygiene import AsyncHygieneRule
    from repro.analysis.flow.contractdrift import ContractDriftRule
    from repro.analysis.flow.escape import SnapshotEscapeRule
    from repro.analysis.flow.indexdtype import IndexDtypeRule
    from repro.analysis.flow.lockorder import LockOrderRule
    from repro.analysis.flow.metricscatalog import MetricsCatalogRule
    from repro.analysis.flow.protocolconf import PipeProtocolRule
    from repro.analysis.flow.resources import ResourceLifecycleRule
    from repro.analysis.flow.rngflow import RngPurityRule

    return [
        LockOrderRule(),
        RngPurityRule(),
        SnapshotEscapeRule(),
        AsyncHygieneRule(),
        ResourceLifecycleRule(),
        PipeProtocolRule(),
        MetricsCatalogRule(),
        ShapeConformanceRule(),
        IndexDtypeRule(),
        AllocHygieneRule(),
        ContractDriftRule(),
    ]
