"""R15 — allocation hygiene inside ``# hot-path`` kernel loops.

The steady-state kernels (walk stepping, collision counting, delta
merging) are called thousands of times per query; an ``np.append`` in
their loops turns an O(n) pass into O(n²) copying and churns the
allocator on every iteration.  The discipline, documented in
``docs/performance.md``: hot kernels preallocate outside the loop and
write into views inside it.

A function opts in by carrying ``# hot-path`` on its decorator/``def``
header lines (the grammar of :func:`~repro.analysis.flow.arrayflow
.marked_hot_path`, shared with the runtime's ``# no-alloc``).  Inside
its ``for``/``while`` bodies this rule flags:

- direct calls to the **tracked allocators** — the same set the runtime
  sanitizer counts (``np.concatenate``/``append``/``vstack``/...);
- ``.copy()`` on a value the interpreter proved to be an array;
- **boolean-mask fancy indexing** (``row[row >= 0]``) — always a fresh
  compacted allocation;
- calls to project functions that *transitively* allocate — computed as
  a closure over the call graph, same shape as
  :meth:`~repro.analysis.flow.graph.ProjectIndex
  .transitive_acquisitions` — so hiding the ``np.append`` one call down
  does not hide the finding.

Deliberate allocations (a compaction that genuinely must copy) take a
``# repro: noqa R15 -- <reason>`` like any other rule.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.flow.arrayflow import ArrayFlowIndex, FunctionFacts, arrayflow_index
from repro.analysis.rules import Rule
from repro.analysis.source import SourceFile, attribute_chain

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.runner import Project

__all__ = ["AllocHygieneRule"]

#: numpy module functions that always allocate a fresh result array —
#: mirror of the runtime monitor's TRACKED_ALLOCATORS (sanitizer.arrays).
_TRACKED_ALLOCATORS = frozenset(
    {"concatenate", "vstack", "hstack", "column_stack", "stack", "append",
     "copy", "tile"}
)


class AllocHygieneRule(Rule):
    id = "R15"
    name = "alloc-hygiene"
    summary = (
        "loops of # hot-path kernels must not allocate: no tracked numpy "
        "allocators, array .copy(), boolean-mask compaction, or calls "
        "into transitively-allocating project functions"
    )

    def __init__(self) -> None:
        self._findings: Dict[str, List[Finding]] = {}

    def prepare(self, project: "Project") -> None:
        self._findings = {}
        flow = arrayflow_index(project)
        allocates = self._transitive_allocators(flow)
        for facts in flow.functions.values():
            if not facts.hot_path:
                continue
            source = flow.index.source_by_rel.get(facts.info.rel)
            if source is None:
                continue
            self._scan_function(flow, facts, source, allocates)

    # -- transitive allocator closure ---------------------------------

    def _np_allocator_name(
        self, call: ast.Call, source: SourceFile
    ) -> Optional[str]:
        """Tracked-allocator name of a ``np.<f>(...)`` call, or None."""
        chain = attribute_chain(call.func)
        aliases = set(source.aliases.module_alias_for("numpy"))
        if chain is not None and len(chain) == 2 and chain[0] in aliases:
            return chain[1] if chain[1] in _TRACKED_ALLOCATORS else None
        if isinstance(call.func, ast.Name):
            qualified = source.aliases.qualified(call.func.id)
            if qualified is not None and qualified.startswith("numpy."):
                name = qualified.split(".", 1)[1]
                return name if name in _TRACKED_ALLOCATORS else None
        return None

    def _transitive_allocators(self, flow: ArrayFlowIndex) -> Dict[str, str]:
        """qual -> human-readable reason, for every project function that
        (transitively) calls a tracked numpy allocator anywhere in its
        body.  Fixpoint over the call graph, mirroring
        ``transitive_acquisitions``."""
        reasons: Dict[str, str] = {}
        for qual, sites in flow.index.calls.items():
            source = flow.index.source_by_rel.get(qual.split("::", 1)[0])
            if source is None:
                continue
            for site in sites:
                name = self._np_allocator_name(site.node, source)
                if name is not None:
                    reasons[qual] = f"calls np.{name}"
                    break
        changed = True
        while changed:
            changed = False
            for qual, sites in flow.index.calls.items():
                if qual in reasons:
                    continue
                for site in sites:
                    if site.callee is not None and site.callee in reasons:
                        callee_name = site.callee.rsplit("::", 1)[1]
                        reasons[qual] = f"calls {callee_name}(), which {reasons[site.callee]}"
                        changed = True
                        break
        return reasons

    # -- per-function scan --------------------------------------------

    def _scan_function(
        self,
        flow: ArrayFlowIndex,
        facts: FunctionFacts,
        source: SourceFile,
        allocates: Dict[str, str],
    ) -> None:
        for stmt in ast.walk(facts.info.node):
            if not isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for child in stmt.body + stmt.orelse:
                for node in ast.walk(child):
                    if isinstance(node, ast.Call):
                        self._check_call(flow, facts, source, node, allocates)
                    elif isinstance(node, ast.Subscript) and isinstance(
                        node.ctx, ast.Load
                    ):
                        self._check_mask_index(facts, source, node)

    def _check_call(
        self,
        flow: ArrayFlowIndex,
        facts: FunctionFacts,
        source: SourceFile,
        node: ast.Call,
        allocates: Dict[str, str],
    ) -> None:
        name = self._np_allocator_name(node, source)
        if name is not None:
            self._emit(
                source, node,
                f"np.{name} inside a loop of hot-path kernel "
                f"{facts.info.name}() allocates a fresh array every "
                "iteration — preallocate outside the loop and write into "
                "views",
            )
            return
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "copy" and not node.args:
            receiver = facts.fact(func.value)
            if receiver is not None:
                self._emit(
                    source, node,
                    f".copy() on a proven array ({receiver.describe()}) "
                    f"inside a loop of hot-path kernel {facts.info.name}() — "
                    "copy once outside the loop or operate in place",
                )
                return
        callee = flow.index.resolve_call(node, facts.info)
        if callee is not None and callee in allocates:
            self._emit(
                source, node,
                f"call inside a loop of hot-path kernel {facts.info.name}() "
                f"reaches an allocator: {callee.rsplit('::', 1)[1]}() "
                f"{allocates[callee]}",
            )

    def _check_mask_index(
        self, facts: FunctionFacts, source: SourceFile, node: ast.Subscript
    ) -> None:
        slice_fact = facts.fact(node.slice)
        is_mask = isinstance(node.slice, ast.Compare) or (
            slice_fact is not None and slice_fact.dtype == "bool"
        )
        if not is_mask:
            return
        if facts.fact(node.value) is None and not isinstance(node.value, ast.Name):
            return
        self._emit(
            source, node,
            "boolean-mask indexing inside a loop of hot-path kernel "
            f"{facts.info.name}() allocates a compacted copy every "
            "iteration — keep the mask and index once, or use np.where "
            "into a preallocated buffer",
        )

    # -- plumbing ------------------------------------------------------

    def _emit(self, source: SourceFile, node: ast.AST, message: str) -> None:
        self._findings.setdefault(source.rel, []).append(
            source.finding(self.id, node, message)
        )

    def check(self, project: "Project", source: SourceFile) -> Iterator[Finding]:
        del project
        yield from self._findings.get(source.rel, [])
