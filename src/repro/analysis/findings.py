"""Finding and suppression primitives of the static analyzer.

A :class:`Finding` is one diagnostic: a rule id, a location, and a
message.  Findings render as ``path:line:col: R<N> message`` — the same
``file:line`` shape compilers and ruff use, so editors and CI log
scrapers pick them up for free.

Suppressions are per-line comments::

    self._snapshot = snapshot  # repro: noqa R1 -- read is atomic here

``# repro: noqa`` with no rule list suppresses every rule on that line;
with a comma-separated list it suppresses only those rules.  The
``-- reason`` tail is required: a suppression without a recorded reason
is itself reported (rule R0), so waivers stay auditable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

__all__ = [
    "Finding",
    "Suppressions",
    "format_findings",
    "parse_suppressions",
]

#: ``# repro: noqa [R1[, R2...]] [-- reason]``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\s+(?P<rules>R\d+(?:\s*,\s*R\d+)*))?"
    r"(?:\s*--\s*(?P<reason>\S.*))?"
)


@dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by a rule."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """``path:line:col: R<N> message`` (the CLI output line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> "tuple[str, int, int, str]":
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class _LineSuppression:
    """The parsed ``# repro: noqa`` comment of one line."""

    rules: Optional[Set[str]]  # None = all rules
    reason: Optional[str]


class Suppressions:
    """Per-file map of line number -> suppression directive."""

    def __init__(self, by_line: Dict[int, _LineSuppression]) -> None:
        self._by_line = by_line

    def covers(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed on ``line``."""
        directive = self._by_line.get(line)
        if directive is None:
            return False
        return directive.rules is None or rule in directive.rules

    def missing_reasons(self) -> List[int]:
        """Lines carrying a noqa directive without a ``-- reason`` tail."""
        return sorted(
            line
            for line, directive in self._by_line.items()
            if not directive.reason
        )

    def lines(self) -> List[int]:
        """Every line carrying a noqa directive."""
        return sorted(self._by_line)

    def rules_on(self, line: int) -> Optional[Set[str]]:
        """Rule ids a line's directive names (None = blanket, or no
        directive on that line)."""
        directive = self._by_line.get(line)
        return directive.rules if directive is not None else None

    def __len__(self) -> int:
        return len(self._by_line)


def parse_suppressions(lines: Iterable[str]) -> Suppressions:
    """Extract every ``# repro: noqa`` directive from a file's lines."""
    by_line: Dict[int, _LineSuppression] = {}
    for number, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        # The directive must BE the comment, not be quoted inside one
        # ("see `# repro: noqa` below" is prose, not a waiver).
        if match.start() != text.index("#"):
            continue
        raw_rules = match.group("rules")
        rules: Optional[Set[str]] = None
        if raw_rules:
            rules = {part.strip() for part in raw_rules.split(",")}
        by_line[number] = _LineSuppression(rules=rules, reason=match.group("reason"))
    return Suppressions(by_line)


def format_findings(findings: Iterable[Finding]) -> str:
    """Sorted one-per-line rendering of a finding collection."""
    return "\n".join(f.render() for f in sorted(findings, key=Finding.sort_key))
