"""AST-based static analysis enforcing this project's invariants.

The serve layer's thread-safety, the snapshot-swap immutability
contract, Monte-Carlo seeding discipline, the hot-path observability
guard idiom, and kernel dtype contracts are all *conventions* — easy to
state in a review, easy to erode one commit at a time.  This package
turns them into machine-checked rules (``repro lint``):

- **R1 lock-discipline** — attributes declared ``# locked-by: <lock>``
  may only be accessed inside ``with self.<lock>:``.
- **R2 snapshot-immutability** — live ``CandidateIndex`` /
  ``EngineSnapshot`` state is never mutated; writes go through
  ``.clone()``.
- **R3 seeded-rng** — Monte-Carlo code threads seeded numpy Generators;
  module-level ``np.random.*`` and stdlib ``random`` are banned.
- **R4 hot-path-obs-guard** — recording hooks in the query path sit
  inside ``if obs.OBS.enabled:``.
- **R5 dtype-contracts** — public kernels declare array dtypes with
  :func:`repro.utils.contracts.contract`; declarations and call sites
  are cross-validated.

Behind ``--flow``, the interprocedural rules of
:mod:`repro.analysis.flow` (call graph + lock model):

- **R6 lock-order** — all code paths must agree on one global lock
  acquisition order (static deadlock detection).
- **R7 rng-purity** — a live numpy Generator never crosses a
  thread/process dispatch boundary; seeds do.
- **R8 snapshot-escape** — published snapshots never flow into a call
  that mutates them.
- **R9 event-loop-hygiene** — coroutines never block the serve loop
  (directly or through sync helpers) and never await under a thread
  lock.
- **R10 resource-lifecycle** — shared-memory segments, executors and
  shard pools are released on every path; ``# owns: <param>`` marks
  ownership transfer at function boundaries.
- **R11 pipe-protocol** — every ``{"op": ...}`` message the shard
  coordinator sends has a worker dispatch arm carrying the fields it
  reads, and every arm has a sender.
- **R12 metrics-catalog** — instruments created in code and entries in
  :data:`repro.obs.catalog.CATALOG` agree exactly, both directions.

Per-line waivers: ``# repro: noqa R<N> -- reason`` (reason required;
a waiver that suppresses nothing is itself flagged as stale).
Reports cache incrementally in ``.repro-lint-cache/``
(:mod:`repro.analysis.cache`) and export as SARIF
(:mod:`repro.analysis.sarif`).  See ``docs/static-analysis.md``.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, format_findings
from repro.analysis.flow import flow_rules
from repro.analysis.rules import Rule, all_rules
from repro.analysis.runner import (
    DEFAULT_SCOPES,
    LintReport,
    Project,
    run_analysis,
    run_lint,
)
from repro.analysis.source import SourceFile, load_source

__all__ = [
    "DEFAULT_SCOPES",
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SourceFile",
    "all_rules",
    "flow_rules",
    "format_findings",
    "load_source",
    "run_analysis",
    "run_lint",
]
