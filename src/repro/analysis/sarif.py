"""SARIF 2.1.0 emission for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest: one ``run`` with a ``tool.driver`` advertising the rule
catalogue, and one ``result`` per finding carrying ``ruleId``, a text
message, and a ``physicalLocation``.  We emit the minimal conformant
subset — no ``fixes``, no ``codeFlows`` — because the receiving end
(GitHub code scanning) only renders location + message + rule metadata.

Suppressed findings are included with a ``suppressions`` entry of kind
``inSource`` when requested, matching how ``--show-suppressed`` behaves
for the JSON format: visible in the upload, but never alert-worthy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule

__all__ = ["SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: R0 is the meta-rule (syntax errors, waiver hygiene, internal errors);
#: it has no Rule object but must still resolve in the SARIF rule index.
_META_RULE = {
    "id": "R0",
    "name": "lint-integrity",
    "shortDescription": {
        "text": "syntax errors, waiver hygiene, and analyzer self-reports"
    },
}


def _result(finding: Finding, rule_index: Dict[str, int], suppressed: bool) -> Dict:
    result: Dict = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                }
            }
        ],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if suppressed:
        result["suppressions"] = [
            {"kind": "inSource", "justification": "# repro: noqa"}
        ]
    return result


def to_sarif(
    findings: Sequence[Finding],
    rules: Sequence[Rule],
    suppressed: Optional[Sequence[Finding]] = None,
) -> Dict:
    """Render findings as a SARIF 2.1.0 log dict (caller json.dumps it)."""
    rule_entries: List[Dict] = [_META_RULE]
    for rule in rules:
        rule_entries.append(
            {
                "id": rule.id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
            }
        )
    rule_index = {entry["id"]: i for i, entry in enumerate(rule_entries)}

    results = [_result(f, rule_index, suppressed=False) for f in findings]
    for finding in suppressed or ():
        results.append(_result(finding, rule_index, suppressed=True))

    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rule_entries,
                    }
                },
                "results": results,
            }
        ],
    }
