"""The analyzer's view of one Python source file.

:class:`SourceFile` bundles everything a rule needs: raw text and lines,
the parsed AST, per-line ``# repro: noqa`` suppressions, the per-line
``# locked-by: <lock>`` annotations the lock-discipline rule reads, and
the module's import aliases (so rules can recognise ``np.random`` and
``repro.obs.instrument`` under whatever name they were imported as).

Comments are not part of the AST, so the two comment grammars are
extracted with line regexes before parsing; everything else is plain
:mod:`ast`.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.analysis.findings import Finding, Suppressions, parse_suppressions

__all__ = ["ImportAliases", "SourceFile", "attribute_chain", "load_source"]

#: ``self._snapshot = ...  # locked-by: _lock``
_LOCKED_BY_RE = re.compile(r"#\s*locked-by:\s*(?P<lock>[A-Za-z_][A-Za-z0-9_]*)")

#: ``def f(conn):  # owns: conn`` — the function takes ownership of the
#: named parameter(s) and must release them (R10 lifecycle typestate).
_OWNS_RE = re.compile(
    r"#\s*owns:\s*(?P<names>[A-Za-z_][A-Za-z0-9_]*(?:\s*,\s*[A-Za-z_][A-Za-z0-9_]*)*)"
)


@dataclass
class ImportAliases:
    """Name bindings produced by a module's import statements.

    ``modules`` maps a local name to the dotted module it refers to
    (``{"np": "numpy", "obs": "repro.obs.instrument"}``); ``names`` maps
    a local name to the fully qualified object it was imported from
    (``{"record_query": "repro.obs.instrument.record_query"}``).
    """

    modules: Dict[str, str] = field(default_factory=dict)
    names: Dict[str, str] = field(default_factory=dict)

    def module_alias_for(self, dotted: str) -> List[str]:
        """Every local name bound to the module ``dotted``."""
        return [alias for alias, target in self.modules.items() if target == dotted]

    def qualified(self, name: str) -> Optional[str]:
        """Fully qualified origin of a bare imported name, if known."""
        return self.names.get(name)


class SourceFile:
    """One parsed file plus the comment annotations rules consume."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        #: Path rendered in findings (repo-relative when possible).
        self.rel = rel
        self.text = text
        self.lines: List[str] = text.splitlines()
        # Comment grammars are parsed from real COMMENT tokens only, so a
        # docstring that *talks about* `# repro: noqa` is not a directive.
        comments = _comment_lines(text, len(self.lines))
        self.suppressions: Suppressions = parse_suppressions(comments)
        #: line number -> lock name from a ``# locked-by:`` comment.
        self.locked_by: Dict[int, str] = _parse_locked_by(comments)
        #: line number -> parameter names from a ``# owns:`` comment.
        self.owns: Dict[int, Tuple[str, ...]] = _parse_owns(comments)
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: ast.Module = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            self.syntax_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        self.aliases: ImportAliases = _collect_aliases(self.tree)

    def finding(self, rule: str, node: Union[ast.AST, int], message: str) -> Finding:
        """A :class:`Finding` anchored at ``node`` (or a raw line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
        return Finding(rule=rule, path=self.rel, line=line, col=col, message=message)

    def suppressed(self, finding: Finding) -> bool:
        """Whether a per-line noqa directive waives this finding."""
        return self.suppressions.covers(finding.line, finding.rule)

    def classes(self) -> Iterator[ast.ClassDef]:
        """Top-level and nested class definitions, in source order."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


def load_source(path: Path, root: Optional[Path] = None) -> SourceFile:
    """Read and parse ``path``; ``root`` controls the rendered path."""
    rel = str(path)
    if root is not None:
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
    return SourceFile(path, rel, path.read_text(encoding="utf-8"))


def attribute_chain(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """``a.b.c`` as ``("a", "b", "c")``; None when the chain has calls
    or subscripts in it (those receivers are out of static reach)."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return None


def _comment_lines(text: str, n_lines: int) -> List[str]:
    """Per-line comment text (empty where a line has no real comment).

    Tokenizing skips string literals, so directive grammars can't be
    triggered from inside docstrings.  On tokenizer errors (the file is
    about to fail ``ast.parse`` anyway) fall back to raw lines.
    """
    comments = [""] * n_lines
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                line = token.start[0]
                if 1 <= line <= n_lines:
                    comments[line - 1] = token.string
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return text.splitlines()
    return comments


def _parse_locked_by(lines: List[str]) -> Dict[int, str]:
    locked: Dict[int, str] = {}
    for number, text in enumerate(lines, start=1):
        if "locked-by" not in text:
            continue
        match = _LOCKED_BY_RE.search(text)
        if match is not None:
            locked[number] = match.group("lock")
    return locked


def _parse_owns(lines: List[str]) -> Dict[int, Tuple[str, ...]]:
    owns: Dict[int, Tuple[str, ...]] = {}
    for number, text in enumerate(lines, start=1):
        if "owns" not in text:
            continue
        match = _OWNS_RE.search(text)
        if match is not None:
            owns[number] = tuple(
                part.strip() for part in match.group("names").split(",")
            )
    return owns


def _collect_aliases(tree: ast.Module) -> ImportAliases:
    aliases = ImportAliases()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                local = name.asname or name.name.partition(".")[0]
                target = name.name if name.asname else name.name.partition(".")[0]
                aliases.modules[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for name in node.names:
                if name.name == "*":
                    continue
                local = name.asname or name.name
                qualified = f"{node.module}.{name.name}"
                # ``from repro.obs import instrument as obs`` binds a
                # module; record it on both maps — rules pick the view
                # they need and submodule-vs-object is not decidable
                # syntactically.
                aliases.modules[local] = qualified
                aliases.names[local] = qualified
    return aliases
