"""Command-line entry point: ``repro lint`` / ``python -m repro.analysis``.

Exit codes: 0 — clean; 1 — findings reported; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.findings import format_findings
from repro.analysis.rules import all_rules
from repro.analysis.runner import run_lint

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Project-specific static analysis: lock discipline (R1), snapshot "
            "immutability (R2), seeded RNG (R3), hot-path obs guards (R4), "
            "dtype contracts (R5). See docs/static-analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2,...",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory findings are rendered relative to (default: cwd)",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.explain:
        for rule in all_rules():
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0

    only = None
    if options.rules:
        only = [part.strip() for part in options.rules.split(",") if part.strip()]
        known = {rule.id for rule in all_rules()} | {"R0"}
        unknown = [rule_id for rule_id in only if rule_id not in known]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    paths: List[Path] = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(str(p) for p in missing)}")

    root = Path(options.root) if options.root else None
    findings = run_lint(paths, root=root, only=only)
    if findings:
        print(format_findings(findings))
        print(f"\n{len(findings)} finding(s).", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
