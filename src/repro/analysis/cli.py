"""Command-line entry point: ``repro lint`` / ``python -m repro.analysis``.

Exit codes: 0 — clean; 1 — findings reported; 2 — usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.findings import Finding, format_findings
from repro.analysis.rules import all_rules
from repro.analysis.runner import run_analysis

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Project-specific static analysis: lock discipline (R1), snapshot "
            "immutability (R2), seeded RNG (R3), hot-path obs guards (R4), "
            "dtype contracts (R5); with --flow also lock-order consistency "
            "(R6), RNG-stream purity (R7), and snapshot escape analysis (R8). "
            "See docs/static-analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="R1,R2,...",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory findings are rendered relative to (default: cwd)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural flow rules R6-R8",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format (json: machine-readable finding list)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also report findings waived by `# repro: noqa` directives",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _finding_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.explain:
        from repro.analysis.flow import flow_rules

        for rule in [*all_rules(), *flow_rules()]:
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0

    only = None
    if options.rules:
        from repro.analysis.flow import flow_rules

        only = [part.strip() for part in options.rules.split(",") if part.strip()]
        known = {rule.id for rule in all_rules()} | {"R0"}
        known |= {rule.id for rule in flow_rules()}
        unknown = [rule_id for rule_id in only if rule_id not in known]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    paths: List[Path] = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(str(p) for p in missing)}")

    root = Path(options.root) if options.root else None
    report = run_analysis(paths, root=root, only=only, flow=options.flow)

    if options.output_format == "json":
        payload = {
            "findings": [_finding_dict(f) for f in report.findings],
            "suppressed_count": len(report.suppressed),
            "stale_count": len(report.stale),
        }
        if options.show_suppressed:
            payload["suppressed"] = [_finding_dict(f) for f in report.suppressed]
        print(json.dumps(payload, indent=2))
        return 1 if report.findings else 0

    if report.findings:
        print(format_findings(report.findings))
    if options.show_suppressed and report.suppressed:
        print(
            f"\n{len(report.suppressed)} suppressed finding(s):", file=sys.stderr
        )
        for finding in report.suppressed:
            print(f"  [waived] {finding.render()}", file=sys.stderr)
    elif report.suppressed:
        print(
            f"{len(report.suppressed)} finding(s) suppressed by `# repro: noqa` "
            "(run with --show-suppressed to list them)",
            file=sys.stderr,
        )
    if report.findings:
        print(f"\n{len(report.findings)} finding(s).", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
