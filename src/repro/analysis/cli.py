"""Command-line entry point: ``repro lint`` / ``python -m repro.analysis``.

Exit codes: 0 — clean; 1 — findings reported; 2 — usage error *or*
analyzer crash.  A crash still emits output in the selected format — a
synthetic R0 finding plus the traceback on stderr — so CI pipelines
that parse the output (problem matchers, SARIF uploads) record the
failure instead of green-washing an analyzer that never ran.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.cache import CACHE_DIR_NAME, LintCache
from repro.analysis.findings import Finding, format_findings
from repro.analysis.rules import all_rules
from repro.analysis.runner import LintReport, run_analysis

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Project-specific static analysis: lock discipline (R1), snapshot "
            "immutability (R2), seeded RNG (R3), hot-path obs guards (R4), "
            "dtype contracts (R5); with --flow also the interprocedural "
            "rules: lock-order consistency (R6), RNG-stream purity (R7), "
            "snapshot escape analysis (R8), event-loop hygiene (R9), "
            "resource lifecycle (R10), pipe-protocol conformance (R11), "
            "metrics-catalog conformance (R12), shape conformance (R13), "
            "index-dtype discipline (R14), hot-path allocation hygiene "
            "(R15), and contract drift (R16). See docs/static-analysis.md."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="rules",
        default=None,
        metavar="R1,R2,...",
        help="comma-separated rule ids to run (default: all; "
        "--rules is the legacy spelling)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="R1,R2,...",
        help="comma-separated rule ids to drop from the selected set",
    )
    parser.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="directory findings are rendered relative to (default: cwd)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the interprocedural flow rules R6-R12",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
        help="output format (json: machine-readable finding list; "
        "sarif: SARIF 2.1.0 for code-scanning uploads)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also report findings waived by `# repro: noqa` directives",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"bypass the {CACHE_DIR_NAME}/ incremental-analysis cache",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _finding_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }


def _active_rules(flow: bool) -> list:
    rules = list(all_rules())
    if flow:
        from repro.analysis.flow import flow_rules

        rules.extend(flow_rules())
    return rules


def _emit(report: LintReport, options: argparse.Namespace) -> int:
    if options.output_format == "sarif":
        from repro.analysis.sarif import to_sarif

        log = to_sarif(
            report.findings,
            _active_rules(options.flow),
            suppressed=report.suppressed if options.show_suppressed else None,
        )
        print(json.dumps(log, indent=2))
        return 1 if report.findings else 0

    if options.output_format == "json":
        payload = {
            "findings": [_finding_dict(f) for f in report.findings],
            "suppressed_count": len(report.suppressed),
            "stale_count": len(report.stale),
        }
        if options.show_suppressed:
            payload["suppressed"] = [_finding_dict(f) for f in report.suppressed]
        print(json.dumps(payload, indent=2))
        return 1 if report.findings else 0

    if report.findings:
        print(format_findings(report.findings))
    if options.show_suppressed and report.suppressed:
        print(
            f"\n{len(report.suppressed)} suppressed finding(s):", file=sys.stderr
        )
        for finding in report.suppressed:
            print(f"  [waived] {finding.render()}", file=sys.stderr)
    elif report.suppressed:
        print(
            f"{len(report.suppressed)} finding(s) suppressed by `# repro: noqa` "
            "(run with --show-suppressed to list them)",
            file=sys.stderr,
        )
    if report.findings:
        print(f"\n{len(report.findings)} finding(s).", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.explain:
        for rule in _active_rules(flow=True):
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0

    def _parse_ids(raw: Optional[str], flag: str) -> Optional[List[str]]:
        if not raw:
            return None
        from repro.analysis.flow import flow_rules

        ids = [part.strip() for part in raw.split(",") if part.strip()]
        known = {rule.id for rule in all_rules()} | {"R0"}
        known |= {rule.id for rule in flow_rules()}
        unknown = [rule_id for rule_id in ids if rule_id not in known]
        if unknown:
            parser.error(f"unknown rule id(s) in {flag}: {', '.join(unknown)}")
        return ids

    only = _parse_ids(options.rules, "--select")
    ignore = _parse_ids(options.ignore, "--ignore")

    paths: List[Path] = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {', '.join(str(p) for p in missing)}")

    root = Path(options.root) if options.root else None
    cache = None
    if not options.no_cache:
        cache = LintCache((root or Path.cwd()) / CACHE_DIR_NAME)
    try:
        report = run_analysis(
            paths, root=root, only=only, ignore=ignore, flow=options.flow,
            cache=cache,
        )
    except Exception as exc:  # noqa: BLE001 - anything except SystemExit
        # An analyzer crash must never look like a clean run: print the
        # traceback for humans, synthesize an R0 finding so machine
        # formats record it, and exit 2 (distinct from 1 = findings).
        traceback.print_exc(file=sys.stderr)
        crash = Finding(
            rule="R0",
            path="<repro-lint>",
            line=0,
            col=0,
            message=(
                f"internal analyzer error: {type(exc).__name__}: {exc} "
                "(full traceback on stderr)"
            ),
        )
        _emit(LintReport(findings=[crash], suppressed=[], stale=[]), options)
        return 2

    return _emit(report, options)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
