"""``repro tune`` — offline hill-climb over index and serving knobs.

The live controller (:mod:`repro.control.controller`) can only move
knobs that apply without a rebuild.  The *offline* tuner closes the
rest of the loop: it records a workload, measures candidate
parameterisations end to end — index build (P/Q of Algorithm 4),
query-time walk budgets, and the micro-batcher's window against a real
server — and hill-climbs one knob at a time, keeping only improving
moves.

The objective is the paper-faithful one: **p99 latency at fixed
accuracy**.  A candidate whose top-k overlap against a high-budget
reference drops below the floor (the §8 defaults' own accuracy minus a
small tolerance) is rejected regardless of speed, so the climb can
never trade answers for latency.  Because the climb starts *from* the
§8 defaults and only ever accepts improvements, the tuned point
matches or beats the defaults by construction — ``BENCH_tune.json``
records both points (per workload shape) plus the full trajectory so
the claim is auditable.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TUNABLES, SimRankConfig
from repro.core.engine import SimRankEngine
from repro.errors import ConfigError
from repro.graph.csr import CSRGraph
from repro.workloads import degree_biased_workload, uniform_workload

__all__ = [
    "WORKLOAD_SHAPES",
    "make_workload",
    "evaluate_config",
    "hill_climb",
    "tune_serving_window",
    "tune_offline",
]

#: The two shapes §8's static defaults are benchmarked against: uniform
#: (the paper's measurement setup) and hub-heavy (production "similar
#: pages to X" traffic, where popular vertices dominate and their wide
#: candidate sets stress the refine stage).
WORKLOAD_SHAPES = ("uniform", "hub")

#: Index/engine knobs the offline climb may move (superset of the live
#: controller's: P/Q need a rebuild, so only this path touches them).
OFFLINE_KNOBS = ("index_walks", "index_checks", "r_pair", "screen_slack")


def make_workload(
    graph: CSRGraph, shape: str, length: int, seed: int
) -> List[int]:
    """The recorded query stream for one workload shape."""
    if shape == "uniform":
        return uniform_workload(graph, length, seed=seed)
    if shape == "hub":
        return degree_biased_workload(graph, length, seed=seed, smoothing=0.1)
    raise ConfigError(f"unknown workload shape {shape!r}; use {WORKLOAD_SHAPES}")


def _reference_truth(
    graph: CSRGraph, queries: Sequence[int], base: SimRankConfig, seed: int, k: int
) -> Dict[int, frozenset]:
    """High-budget reference top-k sets (the fixed-accuracy yardstick)."""
    ref_config = base.with_(
        r_pair=400, r_screen=40, index_walks=20, index_checks=10
    )
    engine = SimRankEngine(graph, ref_config, seed=seed).preprocess()
    truth: Dict[int, frozenset] = {}
    for u in set(int(q) for q in queries):
        truth[u] = frozenset(v for v, _ in engine.top_k(u, k=k).items)
    return truth


def evaluate_config(
    graph: CSRGraph,
    config: SimRankConfig,
    queries: Sequence[int],
    truth: Dict[int, frozenset],
    k: int,
    seed: int,
) -> Dict[str, float]:
    """Build the index, replay the workload, measure latency + accuracy.

    Returns ``p99_ms`` / ``mean_ms`` (per-query wall clock),
    ``accuracy`` (mean top-k overlap with the reference), and
    ``preprocess_seconds`` — everything a tuning objective needs.
    """
    engine = SimRankEngine(graph, config, seed=seed).preprocess()
    latencies: List[float] = []
    overlaps: List[float] = []
    for u in queries:
        start = time.perf_counter()
        result = engine.top_k(int(u), k=k)
        latencies.append(time.perf_counter() - start)
        answered = frozenset(v for v, _ in result.items)
        reference = truth[int(u)]
        overlaps.append(
            len(answered & reference) / len(reference) if reference else 1.0
        )
    lat = np.asarray(latencies)
    return {
        "p99_ms": float(np.quantile(lat, 0.99) * 1000.0),
        "mean_ms": float(lat.mean() * 1000.0),
        "accuracy": float(np.mean(overlaps)),
        "preprocess_seconds": float(engine.preprocess_seconds),
    }


def hill_climb(
    graph: CSRGraph,
    base: SimRankConfig,
    queries: Sequence[int],
    truth: Dict[int, frozenset],
    k: int,
    seed: int,
    knobs: Sequence[str] = OFFLINE_KNOBS,
    max_rounds: int = 3,
    accuracy_tolerance: float = 0.02,
) -> Tuple[Dict[str, float], Dict[str, float], List[Dict[str, Any]]]:
    """Greedy one-knob-at-a-time descent on p99 at fixed accuracy.

    Starts from ``base`` (the §8 defaults), evaluates every knob's
    up/down neighbour on the :data:`~repro.core.config.TUNABLES` grid,
    accepts the best improving move, and repeats until a round yields
    no improvement or ``max_rounds`` is exhausted.  The accuracy floor
    is the *starting point's own accuracy* minus ``accuracy_tolerance``
    — tuned must answer at least as well as the defaults did.

    Returns ``(best_knob_values, best_metrics, trajectory)``.
    """
    values: Dict[str, float] = {
        name: float(getattr(base, name)) for name in knobs
    }
    current = evaluate_config(graph, base, queries, truth, k, seed)
    floor = current["accuracy"] - accuracy_tolerance
    trajectory: List[Dict[str, Any]] = [
        {"move": "start", "knobs": dict(values), "metrics": dict(current)}
    ]

    def config_for(candidate: Dict[str, float]) -> SimRankConfig:
        typed = {
            name: int(round(v)) if TUNABLES[name].integer else v
            for name, v in candidate.items()
        }
        return base.with_(**typed)

    for _ in range(max_rounds):
        best_move: Optional[Tuple[str, float, Dict[str, float]]] = None
        for name in knobs:
            spec = TUNABLES[name]
            for neighbour in (spec.down(values[name]), spec.up(values[name])):
                if neighbour == values[name]:
                    continue  # pinned at a bound in this direction
                candidate = dict(values, **{name: neighbour})
                metrics = evaluate_config(
                    graph, config_for(candidate), queries, truth, k, seed
                )
                if metrics["accuracy"] < floor:
                    continue
                if metrics["p99_ms"] < current["p99_ms"] and (
                    best_move is None or metrics["p99_ms"] < best_move[2]["p99_ms"]
                ):
                    best_move = (name, neighbour, metrics)
        if best_move is None:
            break
        name, neighbour, metrics = best_move
        values[name] = neighbour
        current = metrics
        trajectory.append(
            {"move": f"{name}={neighbour:g}", "knobs": dict(values),
             "metrics": dict(metrics)}
        )
    return values, current, trajectory


# ----------------------------------------------------------------------
# Serving-window tuning (real server, concurrent clients)
# ----------------------------------------------------------------------


def _measure_serving(
    engine: SimRankEngine,
    queries: Sequence[int],
    max_batch: int,
    batch_window: float,
    k: int,
    concurrency: int = 4,
) -> Dict[str, float]:
    """p99 through a real :class:`SimRankServer` at the given batch knobs.

    Spawns ``concurrency`` client threads replaying slices of the
    workload, then reads the latency histogram the server itself
    recorded (queue wait included — exactly what the live controller
    will later steer on).
    """
    import threading

    from repro.serve import ServeConfig, ServerThread, SimRankServer
    from repro.serve.client import ServeClient

    server = SimRankServer(
        engine,
        ServeConfig(
            port=0, max_batch=max_batch, batch_window=batch_window,
            cache_capacity=None,  # caching would hide the knobs under test
        ),
    )
    thread = ServerThread(server)
    port = thread.start()
    try:
        slices = [list(queries)[i::concurrency] for i in range(concurrency)]

        def _client(vertices: List[int]) -> None:
            with ServeClient("127.0.0.1", port) as client:
                for u in vertices:
                    client.top_k(int(u), k=k)

        workers = [
            threading.Thread(target=_client, args=(s,)) for s in slices if s
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        histogram = server.registry.get("serve", "request_latency_seconds")
        assert histogram is not None
        return {
            "p99_ms": histogram.quantile(0.99) * 1000.0,
            "mean_ms": (
                (histogram.sum / histogram.count) * 1000.0
                if histogram.count
                else 0.0
            ),
        }
    finally:
        thread.stop()


def tune_serving_window(
    engine: SimRankEngine,
    queries: Sequence[int],
    k: int,
    start_max_batch: int = 16,
    start_window: float = 0.002,
    max_moves: int = 3,
    concurrency: int = 4,
) -> Tuple[Dict[str, float], Dict[str, Any]]:
    """Hill-climb ``batch_window`` down/up from the static default.

    One serving measurement per candidate; only improving moves are
    kept, so the returned point never loses to the starting default on
    the numbers actually recorded.
    """
    spec = TUNABLES["batch_window"]
    window = spec.clamp(start_window)
    current = _measure_serving(
        engine, queries, start_max_batch, window, k, concurrency=concurrency
    )
    default_metrics = dict(current)
    trajectory: List[Dict[str, Any]] = [
        {"move": "start", "batch_window": window, "metrics": dict(current)}
    ]
    for _ in range(max_moves):
        improved = False
        for neighbour in (spec.down(window), spec.up(window)):
            if neighbour == window:
                continue
            metrics = _measure_serving(
                engine, queries, start_max_batch, neighbour, k,
                concurrency=concurrency,
            )
            if metrics["p99_ms"] < current["p99_ms"]:
                window, current, improved = neighbour, metrics, True
                trajectory.append(
                    {"move": f"batch_window={neighbour:g}",
                     "batch_window": neighbour, "metrics": dict(metrics)}
                )
                break
        if not improved:
            break
    return (
        {"batch_window": window, "max_batch": float(start_max_batch)},
        {"default": default_metrics, "tuned": dict(current),
         "trajectory": trajectory},
    )


# ----------------------------------------------------------------------
# The full `repro tune` run
# ----------------------------------------------------------------------


def tune_offline(
    graph: CSRGraph,
    base: Optional[SimRankConfig] = None,
    shapes: Sequence[str] = WORKLOAD_SHAPES,
    quick: bool = False,
    seed: int = 7,
    include_serving: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Tune every shape and return the ``BENCH_tune.json`` payload.

    ``quick`` shrinks workload length and climb depth for CI smoke
    runs; the by-construction guarantee (tuned never loses on the
    recorded numbers) holds at any size.
    """
    base = base or SimRankConfig.fast()
    say = progress or (lambda _msg: None)
    n_queries = 16 if quick else 48
    rounds = 2 if quick else 4
    serve_moves = 1 if quick else 3
    k = min(base.k, 10)

    payload: Dict[str, Any] = {
        "graph": {"n": graph.n, "m": graph.m},
        "parameters": {
            "quick": quick,
            "seed": seed,
            "queries_per_shape": n_queries,
            "k": k,
            "defaults": {
                name: float(getattr(base, name)) for name in OFFLINE_KNOBS
            },
        },
        "workloads": {},
    }
    for shape in shapes:
        say(f"[{shape}] recording workload + reference truth ...")
        queries = make_workload(graph, shape, n_queries, seed=seed + 1)
        truth = _reference_truth(graph, queries, base, seed, k)
        say(f"[{shape}] hill-climbing {', '.join(OFFLINE_KNOBS)} ...")
        knobs, tuned_metrics, trajectory = hill_climb(
            graph, base, queries, truth, k, seed, max_rounds=rounds
        )
        entry: Dict[str, Any] = {
            "default": trajectory[0]["metrics"],
            "tuned": tuned_metrics,
            "knobs": knobs,
            "evaluations": len(trajectory),
            "trajectory": trajectory,
        }
        if include_serving:
            say(f"[{shape}] measuring batch window through a live server ...")
            typed = {
                name: int(round(v)) if TUNABLES[name].integer else v
                for name, v in knobs.items()
            }
            engine = SimRankEngine(
                graph, base.with_(**typed), seed=seed
            ).preprocess()
            serve_knobs, serve_report = tune_serving_window(
                engine, queries, k, max_moves=serve_moves
            )
            entry["serving"] = serve_report
            entry["knobs"].update(serve_knobs)
        payload["workloads"][shape] = entry
    return payload
