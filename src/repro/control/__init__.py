"""repro.control — the self-tuning feedback loop over the serve stack.

Two halves, one contract (:data:`repro.core.config.TUNABLES` — every
knob the subsystem may move, with validated bounds and step sizes):

- :mod:`repro.control.controller` — the **live** controller: reads
  windowed metric deltas (:class:`repro.obs.window.MetricsWindow`),
  moves one knob per tick by one bounded hysteretic step, and rolls a
  step back automatically when an SLO guard (p99 latency, error rate,
  shed rate) regresses during its probation window.  Wired into
  :class:`repro.serve.server.SimRankServer` by ``serve --autotune``.
- :mod:`repro.control.offline` — the **offline** tuner (``repro
  tune``): hill-climbs the rebuild-requiring knobs (P/Q of Algorithm 4)
  plus the serving batch window against a recorded workload, emitting
  ``BENCH_tune.json`` with the §8-defaults-vs-tuned comparison.

See ``docs/tuning.md`` for the knob table, the guard semantics, and
the observable ``control_*`` metric series.
"""

from repro.control.controller import Controller, ControllerConfig
from repro.control.offline import (
    WORKLOAD_SHAPES,
    evaluate_config,
    hill_climb,
    make_workload,
    tune_offline,
    tune_serving_window,
)

__all__ = [
    "Controller",
    "ControllerConfig",
    "WORKLOAD_SHAPES",
    "evaluate_config",
    "hill_climb",
    "make_workload",
    "tune_offline",
    "tune_serving_window",
]
