"""The feedback controller: windowed metrics in, bounded knob steps out.

One :class:`Controller` owns a :class:`~repro.obs.window.MetricsWindow`
and a :class:`~repro.serve.tunables.TunableSet` and runs a synchronous
:meth:`Controller.tick` per control interval (the serve layer drives it
from an asyncio task; tests drive it directly with synthetic
snapshots).  Each tick:

1. diff the registry snapshot into window deltas (rates and quantiles
   over the *last interval only* — lifetime aggregates would let an old
   good hour mask a bad minute);
2. check the **SLO guards** (p99 latency, error rate, shed rate).  A
   trip during the probation window of the most recent step rolls that
   step back immediately and freezes the controller for a cooldown;
3. otherwise update the hysteresis streaks and, only after
   ``hysteresis`` consecutive windows agree, move **one knob by one
   bounded step** (the :class:`~repro.core.config.TunableSpec` step,
   clamped) — protective moves (shrink the batch window, cut the walk
   budget, raise the screen threshold) when latency crowds the SLO,
   opportunistic moves (grow the batch, spend walks on accuracy) when
   there is ample headroom.

Every decision is observable: ``control_*`` counters and per-knob
gauges (:mod:`repro.obs.catalog`), plus :meth:`Controller.status` for
the ``/healthz`` controller section.  The controller never *creates*
settings — it only walks the validated tunable grid — so the worst
possible outcome of a broken feedback signal is a clamped knob plus a
rollback, never an unbounded excursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.obs import instrument as obs
from repro.obs.window import MetricsWindow, WindowStats
from repro.serve.tunables import TunableSet

__all__ = ["ControllerConfig", "Controller"]

# Snapshot keys the controller reads (subsystem.name, as exported by
# MetricsRegistry.snapshot()).
_LATENCY = "serve.request_latency_seconds"
_REQUESTS = "serve.requests_total"
_ERRORS = "serve.errors_total"
_SHED = "serve.requests_shed_total"
_BATCH = "serve.batch_size"


@dataclass(frozen=True)
class ControllerConfig:
    """Targets and temperament of one :class:`Controller`.

    ``slo_p99_ms`` is the guarded objective; the two fractions split
    its headroom into three bands — protect above
    ``protect_fraction * slo``, relax below ``relax_fraction * slo``,
    and leave the knobs alone in between (the dead band that keeps the
    loop from oscillating around a boundary).
    """

    slo_p99_ms: float = 250.0
    max_error_rate: float = 0.01
    max_shed_rate: float = 0.05
    protect_fraction: float = 0.8
    relax_fraction: float = 0.5
    hysteresis: int = 2  # consecutive agreeing windows before a step
    cooldown_ticks: int = 3  # freeze after any step or rollback
    guard_ticks: int = 3  # probation window in which a step can roll back
    min_requests: int = 4  # windows thinner than this are ignored
    fill_target: float = 0.8  # batch fill ratio required to grow max_batch

    def __post_init__(self) -> None:
        if self.slo_p99_ms <= 0:
            raise ConfigError(f"slo_p99_ms must be > 0, got {self.slo_p99_ms}")
        for name in ("max_error_rate", "max_shed_rate", "fill_target"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if not 0.0 < self.relax_fraction < self.protect_fraction <= 1.0:
            raise ConfigError(
                "need 0 < relax_fraction < protect_fraction <= 1, got "
                f"{self.relax_fraction} / {self.protect_fraction}"
            )
        for name in ("hysteresis", "cooldown_ticks", "guard_ticks", "min_requests"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1, got {getattr(self, name)}")


@dataclass
class _PendingStep:
    """A step still inside its rollback probation window."""

    knob: str
    previous: float
    ticks_left: int


class Controller:
    """Hysteretic single-knob-per-tick feedback controller.

    Not thread-safe by design: exactly one driver calls :meth:`tick`
    (the server's control task, or a test).  The *effects* — tunable
    applies — go through the :class:`TunableSet`'s locked apply path,
    so concurrent readers (batcher loop, engine-handle listener) are
    safe.
    """

    def __init__(self, config: ControllerConfig, tunables: TunableSet) -> None:
        self.config = config
        self.tunables = tunables
        self.window = MetricsWindow()
        self.ticks = 0
        self.steps_total = 0
        self.rollbacks_total = 0
        self.guard_trips_total = 0
        self.last_action = "idle"
        self._hot_streak = 0
        self._cold_streak = 0
        self._cooldown = 0
        self._pending: Optional[_PendingStep] = None
        # Publish the starting point so /metrics has every knob gauge
        # from the first scrape, before any step happens.
        if obs.OBS.enabled:
            for name, value in tunables.current().items():
                obs.set_control_knob(name, value)

    # ------------------------------------------------------------------
    # The control loop body
    # ------------------------------------------------------------------

    def tick(self, snapshot: Dict[str, Any]) -> str:
        """One control interval; returns the action taken (for logs/tests).

        Actions: ``"idle"`` (thin window / dead band), ``"cooldown"``,
        ``"rollback:<knob>"``, ``"step:<knob>:up|down"``, ``"guard"``
        (tripped with nothing to roll back).
        """
        self.ticks += 1
        stats = self.window.advance(snapshot)
        if obs.OBS.enabled:
            obs.record_control_tick()

        requests = stats.delta(_REQUESTS)
        if requests < self.config.min_requests:
            # Too little traffic to read anything into; age the pending
            # step's probation anyway so a quiet server still commits.
            self._age_pending()
            self._tick_cooldown()
            return self._done("idle")

        p99_ms = stats.quantile(_LATENCY, 0.99) * 1000.0
        error_rate = stats.ratio(_ERRORS, _REQUESTS)
        shed = stats.delta(_SHED)
        shed_rate = shed / (requests + shed) if (requests + shed) > 0 else 0.0

        reason = self._guard_reason(p99_ms, error_rate, shed_rate)
        if reason is not None:
            self.guard_trips_total += 1
            if obs.OBS.enabled:
                obs.record_control_guard_trip(reason)
            if self._pending is not None:
                return self._done(self._rollback())
            # Nothing to roll back: treat the trip as a maximally hot
            # window so the protective path reacts without waiting out
            # the full hysteresis.
            self._hot_streak = self.config.hysteresis
            self._cold_streak = 0
            if self._cooldown > 0:
                self._tick_cooldown()
                return self._done("cooldown")
            return self._done(self._protect() or "guard")

        self._age_pending()
        if self._cooldown > 0:
            self._tick_cooldown()
            return self._done("cooldown")

        slo = self.config.slo_p99_ms
        if p99_ms > self.config.protect_fraction * slo:
            self._hot_streak += 1
            self._cold_streak = 0
        elif p99_ms < self.config.relax_fraction * slo:
            self._cold_streak += 1
            self._hot_streak = 0
        else:
            self._hot_streak = 0
            self._cold_streak = 0
            return self._done("idle")

        if self._hot_streak >= self.config.hysteresis:
            return self._done(self._protect() or "idle")
        if self._cold_streak >= self.config.hysteresis:
            return self._done(self._relax(stats) or "idle")
        return self._done("idle")

    # ------------------------------------------------------------------
    # Decision helpers
    # ------------------------------------------------------------------

    def _guard_reason(
        self, p99_ms: float, error_rate: float, shed_rate: float
    ) -> Optional[str]:
        if p99_ms > self.config.slo_p99_ms:
            return "p99"
        if error_rate > self.config.max_error_rate:
            return "error"
        if shed_rate > self.config.max_shed_rate:
            return "shed"
        return None

    def _protect(self) -> Optional[str]:
        """One latency-reducing step, in fixed priority order."""
        for knob, direction in (
            ("batch_window", "down"),  # stop lingering first: pure latency
            ("r_pair", "down"),  # then cheapen the refine stage
            ("screen_slack", "up"),  # finally promote fewer candidates
        ):
            action = self._try_step(knob, direction)
            if action is not None:
                return action
        return None

    def _relax(self, stats: WindowStats) -> Optional[str]:
        """One throughput/accuracy step, gated on actual pressure."""
        # Growing max_batch only helps if batches are actually filling;
        # an empty queue with a bigger cap is pure no-op.
        fill = 0.0
        cap = self.tunables.get("max_batch") if "max_batch" in self.tunables.names() else 0.0
        if cap > 0:
            fill = stats.mean(_BATCH) / cap
        order = (
            [("max_batch", "up")] if fill >= self.config.fill_target else []
        ) + [("r_pair", "up"), ("screen_slack", "down")]
        for knob, direction in order:
            action = self._try_step(knob, direction)
            if action is not None:
                return action
        return None

    def _try_step(self, knob: str, direction: str) -> Optional[str]:
        if knob not in self.tunables.names():
            return None
        spec = self.tunables.spec(knob)
        current = self.tunables.get(knob)
        target = spec.up(current) if direction == "up" else spec.down(current)
        if target == current:  # already pinned at the bound
            return None
        previous = self.tunables.apply(knob, target)
        self.steps_total += 1
        self._pending = _PendingStep(
            knob=knob, previous=previous, ticks_left=self.config.guard_ticks
        )
        self._cooldown = self.config.cooldown_ticks
        self._hot_streak = 0
        self._cold_streak = 0
        if obs.OBS.enabled:
            obs.record_control_step(knob, target)
        return f"step:{knob}:{direction}"

    def _rollback(self) -> str:
        assert self._pending is not None
        pending = self._pending
        self._pending = None
        self.tunables.apply(pending.knob, pending.previous)
        self.rollbacks_total += 1
        self._cooldown = self.config.cooldown_ticks
        self._hot_streak = 0
        self._cold_streak = 0
        if obs.OBS.enabled:
            obs.record_control_rollback(pending.knob, pending.previous)
        return f"rollback:{pending.knob}"

    def _age_pending(self) -> None:
        if self._pending is None:
            return
        self._pending.ticks_left -= 1
        if self._pending.ticks_left <= 0:
            self._pending = None  # survived probation: the step commits

    def _tick_cooldown(self) -> None:
        if self._cooldown > 0:
            self._cooldown -= 1

    def _done(self, action: str) -> str:
        self.last_action = action
        return action

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """The ``/healthz`` controller section (plain JSON-able dict)."""
        return {
            "ticks": self.ticks,
            "knobs": self.tunables.current(),
            "steps_total": self.steps_total,
            "rollbacks_total": self.rollbacks_total,
            "guard_trips_total": self.guard_trips_total,
            "last_action": self.last_action,
            "cooldown": self._cooldown,
            "pending_step": self._pending.knob if self._pending else None,
            "slo_p99_ms": self.config.slo_p99_ms,
        }

    def __repr__(self) -> str:
        return (
            f"Controller(ticks={self.ticks}, steps={self.steps_total}, "
            f"rollbacks={self.rollbacks_total}, last={self.last_action!r})"
        )
